package pathdb

import (
	"strings"
	"testing"
)

func mustLoad(t testing.TB, src string) *DB {
	t.Helper()
	db, err := LoadXMLString(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestQuickstartFlow(t *testing.T) {
	db := mustLoad(t, `<a><b x="1">one</b><c><b x="2">two</b></c></a>`)
	q, err := db.Query("/a//b")
	if err != nil {
		t.Fatal(err)
	}
	if n := q.Count(); n != 2 {
		t.Fatalf("count = %d, want 2", n)
	}
}

func TestNodesAndAccessors(t *testing.T) {
	db := mustLoad(t, `<a><b x="1">one</b><b x="2">two</b></a>`)
	q, _ := db.Query("/a/b")
	nodes := q.Sorted().Nodes()
	if len(nodes) != 2 {
		t.Fatalf("nodes = %d", len(nodes))
	}
	if nodes[0].Name() != "b" {
		t.Fatalf("name = %q", nodes[0].Name())
	}
	if nodes[0].Text() != "one" || nodes[1].Text() != "two" {
		t.Fatalf("texts = %q, %q", nodes[0].Text(), nodes[1].Text())
	}
	if nodes[0].XML() != `<b x="1">one</b>` {
		t.Fatalf("xml = %q", nodes[0].XML())
	}
	if nodes[0].OrdPath() == "" || nodes[0].OrdPath() == nodes[1].OrdPath() {
		t.Fatal("ord paths broken")
	}
	if nodes[0].ID() == nodes[1].ID() {
		t.Fatal("node ids not distinct")
	}
}

func TestAttributeQuery(t *testing.T) {
	db := mustLoad(t, `<a><b x="1"/><b x="2"/></a>`)
	q, _ := db.Query("/a/b/@x")
	nodes := q.Nodes()
	if len(nodes) != 2 {
		t.Fatalf("attrs = %d", len(nodes))
	}
	vals := []string{nodes[0].Text(), nodes[1].Text()}
	if !(vals[0] == "1" && vals[1] == "2") && !(vals[0] == "2" && vals[1] == "1") {
		t.Fatalf("attr values = %v", vals)
	}
	if nodes[0].Name() != "x" {
		t.Fatalf("attr name = %q", nodes[0].Name())
	}
}

func TestStrategiesAgreeViaFacade(t *testing.T) {
	db, err := GenerateXMark(XMarkConfig{ScaleFactor: 0.5, Seed: 1, EntityScale: 0.01}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var counts []int
	for _, s := range []Strategy{Simple, Schedule, Scan, Auto} {
		db.ResetStats()
		q, err := db.Query("/site//item")
		if err != nil {
			t.Fatal(err)
		}
		counts = append(counts, q.WithStrategy(s).Count())
	}
	for i := 1; i < len(counts); i++ {
		if counts[i] != counts[0] {
			t.Fatalf("counts diverge: %v", counts)
		}
	}
	if counts[0] == 0 {
		t.Fatal("no items found")
	}
}

func TestEachEarlyStop(t *testing.T) {
	db := mustLoad(t, `<a><b/><b/><b/></a>`)
	q, _ := db.Query("/a/b")
	seen := 0
	q.Each(func(Node) bool {
		seen++
		return seen < 2
	})
	if seen != 2 {
		t.Fatalf("Each visited %d, want 2", seen)
	}
}

func TestRelativeQueryFromNode(t *testing.T) {
	db := mustLoad(t, `<a><b><c/></b><b/></a>`)
	q, _ := db.Query("/a/b")
	nodes := q.Sorted().Nodes()
	sub, err := nodes[0].Query("c")
	if err != nil {
		t.Fatal(err)
	}
	if n := sub.Count(); n != 1 {
		t.Fatalf("relative count = %d", n)
	}
	if _, err := nodes[0].Query("/abs"); err == nil {
		t.Fatal("absolute path accepted as relative")
	}
}

func TestQueryErrors(t *testing.T) {
	db := mustLoad(t, `<a/>`)
	if _, err := db.Query("not-absolute"); err == nil {
		t.Fatal("relative path accepted by DB.Query")
	}
	if _, err := db.Query("/a/%%"); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := LoadXMLString("<broken", Options{}); err == nil {
		t.Fatal("broken XML accepted")
	}
}

func TestCostReportAndReset(t *testing.T) {
	db, err := GenerateXMark(XMarkConfig{ScaleFactor: 0.2, Seed: 2, EntityScale: 0.01}, Options{BufferPages: 16})
	if err != nil {
		t.Fatal(err)
	}
	db.ResetStats()
	q, _ := db.Query("/site//keyword")
	q.WithStrategy(Scan).Count()
	r := db.CostReport()
	if r.Total == 0 || r.PageReads == 0 {
		t.Fatalf("empty report: %v", r)
	}
	if !strings.Contains(r.String(), "total=") {
		t.Fatal("report string")
	}
	db.ResetStats()
	if db.CostReport().Total != 0 {
		t.Fatal("reset did not clear report")
	}
}

func TestExplain(t *testing.T) {
	db, err := GenerateXMark(XMarkConfig{ScaleFactor: 0.5, Seed: 3, EntityScale: 0.01}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	q, _ := db.Query("/site//description")
	if s := q.Explain(); !strings.Contains(s, "choose") {
		t.Fatalf("explain = %q", s)
	}
}

func TestExportRoundTrip(t *testing.T) {
	src := `<a><b x="1">one</b><c/></a>`
	db := mustLoad(t, src)
	var sb strings.Builder
	if err := db.ExportXML(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `<b x="1">one</b>`) {
		t.Fatalf("export = %q", sb.String())
	}
	if db.Pages() < 1 {
		t.Fatal("no pages")
	}
}

func TestSortedDocumentOrder(t *testing.T) {
	db := mustLoad(t, `<a><b i="1"/><c><b i="2"/></c><b i="3"/></a>`)
	q, _ := db.Query("/a//b")
	nodes := q.Sorted().Nodes()
	if len(nodes) != 3 {
		t.Fatalf("found %d", len(nodes))
	}
	var order []string
	for _, n := range nodes {
		c, _ := n.Query("@i")
		attrs := c.Nodes()
		order = append(order, attrs[0].Text())
	}
	if strings.Join(order, "") != "123" {
		t.Fatalf("order = %v", order)
	}
}

func TestMemoryLimitFallbackViaFacade(t *testing.T) {
	db, err := GenerateXMark(XMarkConfig{ScaleFactor: 0.3, Seed: 5, EntityScale: 0.01}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	q, _ := db.Query("/site//keyword")
	limited := q.WithStrategy(Scan).WithMemoryLimit(2).Count()
	q2, _ := db.Query("/site//keyword")
	free := q2.WithStrategy(Scan).Count()
	if limited != free {
		t.Fatalf("fallback changed results: %d vs %d", limited, free)
	}
}

func TestStrategyNames(t *testing.T) {
	if Auto.String() != "auto" || Simple.String() != "simple" || Schedule.String() != "xschedule" || Scan.String() != "xscan" {
		t.Fatal("strategy names")
	}
}

func TestInsertAndDeleteViaFacade(t *testing.T) {
	db := mustLoad(t, `<inventory><item sku="a"/><item sku="c"/></inventory>`)
	q, _ := db.Query("/inventory/item")
	if q.Count() != 2 {
		t.Fatal("precondition")
	}

	// Append.
	root := firstNode(t, db, "/inventory")
	n, err := db.InsertXML(root, `<item sku="d"><note>appended</note></item>`)
	if err != nil {
		t.Fatal(err)
	}
	if n.Name() != "item" {
		t.Fatalf("inserted name = %q", n.Name())
	}

	// Insert before the second original item.
	items, _ := db.Query("/inventory/item")
	sorted := items.Sorted().Nodes()
	if _, err := db.InsertXMLBefore(root, sorted[1], `<item sku="b"/>`); err != nil {
		t.Fatal(err)
	}

	items, _ = db.Query("/inventory/item")
	var skus []string
	for _, it := range items.Sorted().Nodes() {
		a, _ := it.Query("@sku")
		skus = append(skus, a.Nodes()[0].Text())
	}
	if strings.Join(skus, "") != "abcd" {
		t.Fatalf("sku order = %v", skus)
	}

	// Delete one and verify with every strategy.
	if err := db.Delete(sorted[1]); err != nil { // the original "c"
		t.Fatal(err)
	}
	for _, s := range []Strategy{Simple, Schedule, Scan} {
		q, _ := db.Query("/inventory/item")
		if got := q.WithStrategy(s).Count(); got != 3 {
			t.Fatalf("%v count after delete = %d, want 3", s, got)
		}
	}
}

func firstNode(t *testing.T, db *DB, path string) Node {
	t.Helper()
	q, err := db.Query(path)
	if err != nil {
		t.Fatal(err)
	}
	ns := q.Nodes()
	if len(ns) == 0 {
		t.Fatalf("no results for %s", path)
	}
	return ns[0]
}

func TestInsertErrorsViaFacade(t *testing.T) {
	db := mustLoad(t, `<a/>`)
	root := firstNode(t, db, "/a")
	if _, err := db.InsertXML(root, `<broken`); err == nil {
		t.Fatal("broken fragment accepted")
	}
	if _, err := db.InsertXML(root, `<x/><y/>`); err == nil {
		t.Fatal("multi-root fragment accepted")
	}
}

func TestQueryPlanExplainTree(t *testing.T) {
	db := mustLoad(t, `<a><b/></a>`)
	q, _ := db.Query("/a//b")
	plan := q.WithStrategy(Scan).Plan()
	if !strings.Contains(plan, "XScan") || !strings.Contains(plan, "XAssembly") {
		t.Fatalf("plan = %q", plan)
	}
}

func TestCollectionViaFacade(t *testing.T) {
	docs := [][]byte{
		[]byte(`<lib><book>one</book></lib>`),
		[]byte(`<lib><book>two</book><book>three</book></lib>`),
	}
	db, err := LoadXMLCollection(docs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if db.Documents() != 2 {
		t.Fatalf("documents = %d", db.Documents())
	}
	for _, s := range []Strategy{Simple, Schedule, Scan} {
		q, _ := db.Query("/lib/book")
		if got := q.WithStrategy(s).Count(); got != 3 {
			t.Fatalf("%v collection count = %d, want 3", s, got)
		}
	}
	// Sorted results respect collection order.
	q, _ := db.Query("/lib/book")
	var texts []string
	for _, n := range q.Sorted().Nodes() {
		texts = append(texts, n.Text())
	}
	if strings.Join(texts, ",") != "one,two,three" {
		t.Fatalf("collection order = %v", texts)
	}
	if _, err := LoadXMLCollection([][]byte{[]byte("<bad")}, Options{}); err == nil {
		t.Fatal("broken member accepted")
	}
}

func TestPredicatesViaFacade(t *testing.T) {
	db := mustLoad(t, `<shop>
		<item id="a"><price>10</price><tag>sale</tag></item>
		<item id="b"><price>20</price></item>
		<item id="c"><price>10</price><tag>new</tag></item>
	</shop>`)
	q, err := db.Query(`/shop/item[tag]`)
	if err != nil {
		t.Fatal(err)
	}
	if n := q.Count(); n != 2 {
		t.Fatalf("item[tag] = %d, want 2", n)
	}
	q, _ = db.Query(`/shop/item[tag="sale"]/@id`)
	nodes := q.Nodes()
	if len(nodes) != 1 || nodes[0].Text() != "a" {
		t.Fatalf("sale item = %v", nodes)
	}
	q, _ = db.Query(`//item[price="10"][tag]`)
	if n := q.Count(); n != 2 {
		t.Fatalf("double predicate = %d, want 2", n)
	}
	// All strategies agree.
	for _, s := range []Strategy{Simple, Schedule, Scan} {
		q, _ := db.Query(`//item[price="10"]`)
		if n := q.WithStrategy(s).Count(); n != 2 {
			t.Fatalf("%v predicate count = %d", s, n)
		}
	}
}

func TestUnionQueriesViaFacade(t *testing.T) {
	db := mustLoad(t, `<site>
		<desc>one</desc>
		<note><desc>two</desc></note>
		<mail>hi</mail>
	</site>`)
	for _, s := range []Strategy{Auto, Simple, Schedule, Scan} {
		q, err := db.Query(`//desc | //mail`)
		if err != nil {
			t.Fatal(err)
		}
		if n := q.WithStrategy(s).Count(); n != 3 {
			t.Fatalf("%v union count = %d, want 3", s, n)
		}
	}
	// Overlapping branches deduplicate (node-set semantics).
	q, _ := db.Query(`//desc | /site/desc`)
	if n := q.Count(); n != 2 {
		t.Fatalf("overlap union = %d, want 2", n)
	}
	// Sorted union respects document order across branches.
	q, _ = db.Query(`//mail | //desc`)
	nodes := q.Sorted().Nodes()
	var texts []string
	for _, n := range nodes {
		texts = append(texts, n.Text())
	}
	if strings.Join(texts, ",") != "one,two,hi" {
		t.Fatalf("union order = %v", texts)
	}
	// Each over a union.
	seen := 0
	q, _ = db.Query(`//desc | //mail`)
	q.Each(func(Node) bool { seen++; return true })
	if seen != 3 {
		t.Fatalf("Each over union = %d", seen)
	}
}

func TestVolumeStatsViaFacade(t *testing.T) {
	db := mustLoad(t, `<a><b>x</b><c/></a>`)
	vs := db.VolumeStats()
	if vs.Pages < 1 || vs.CoreNodes != 5 || vs.UsedBytes == 0 {
		t.Fatalf("stats = %+v", vs)
	}
	if vs.Records < vs.CoreNodes {
		t.Fatal("records < core nodes")
	}
}

func TestIOTraceViaFacade(t *testing.T) {
	db, err := GenerateXMark(XMarkConfig{ScaleFactor: 0.2, Seed: 4, EntityScale: 0.01}, Options{BufferPages: 16})
	if err != nil {
		t.Fatal(err)
	}
	db.ResetStats()
	db.SetIOTrace(true)
	q, _ := db.Query("/site//keyword")
	q.WithStrategy(Scan).Count()
	tr := db.IOTrace()
	if len(tr) == 0 {
		t.Fatal("no trace events")
	}
	seq := 0
	for _, ev := range tr {
		if ev.Op == "read-seq" {
			seq++
		}
	}
	if seq < len(tr)/2 {
		t.Fatalf("scan trace not sequential: %d of %d", seq, len(tr))
	}
	db.SetIOTrace(false)
}
