package storage

import (
	"fmt"
	"testing"

	"pathdb/internal/vdisk"
)

// TestDerivedCacheGenerations pins the epoch-generation contract: entries
// are visible only at the epoch they were admitted under, a newer epoch
// replaces the generation wholesale, and a stale (older-epoch) Put is
// dropped rather than shadowing the current generation.
func TestDerivedCacheGenerations(t *testing.T) {
	c := newDerivedCache()

	c.Put(0, "a", 1)
	if v, ok := c.Get(0, "a"); !ok || v.(int) != 1 {
		t.Fatalf("epoch-0 entry lost: %v %v", v, ok)
	}
	if _, ok := c.Get(1, "a"); ok {
		t.Fatal("entry visible at a later epoch")
	}

	// A newer generation evicts everything from the old one.
	c.Put(2, "b", 2)
	if _, ok := c.Get(0, "a"); ok {
		t.Fatal("old generation survived an epoch advance")
	}
	if v, ok := c.Get(2, "b"); !ok || v.(int) != 2 {
		t.Fatalf("new generation entry lost: %v %v", v, ok)
	}

	// A query pinned to a superseded snapshot must not poison the cache.
	c.Put(1, "stale", 3)
	if _, ok := c.Get(1, "stale"); ok {
		t.Fatal("stale-epoch Put was admitted")
	}
	if v, ok := c.Get(2, "b"); !ok || v.(int) != 2 {
		t.Fatal("stale Put disturbed the current generation")
	}

	// reset drops entries but keeps the generation epoch.
	c.reset()
	if _, ok := c.Get(2, "b"); ok {
		t.Fatal("entry survived reset")
	}
	c.Put(2, "b", 4)
	if v, ok := c.Get(2, "b"); !ok || v.(int) != 4 {
		t.Fatal("cache unusable after reset")
	}
}

// TestDerivedCacheBounded checks the generation's entry cap: overflowing
// inserts are dropped, not admitted unboundedly.
func TestDerivedCacheBounded(t *testing.T) {
	c := newDerivedCache()
	for i := 0; i < maxDerivedEntries+10; i++ {
		c.Put(5, fmt.Sprintf("k%d", i), i)
	}
	n := 0
	for i := 0; i < maxDerivedEntries+10; i++ {
		if _, ok := c.Get(5, fmt.Sprintf("k%d", i)); ok {
			n++
		}
	}
	if n != maxDerivedEntries {
		t.Fatalf("generation holds %d entries, cap is %d", n, maxDerivedEntries)
	}
}

// TestStoreDerivedViews checks the Store wiring: views share the base
// store's cache, and a write transaction's overlay view opts out.
func TestStoreDerivedViews(t *testing.T) {
	s := newStore(newDisk(4096), nil, []NodeID{0}, 1, 0, nil)
	base, epoch, ok := s.Derived()
	if !ok || base == nil {
		t.Fatal("base store has no derived cache")
	}
	view := s.Reader(s.led)
	vc, vepoch, ok := view.Derived()
	if !ok || vc != base || vepoch != epoch {
		t.Fatal("reader view does not share the base derived cache")
	}
	ov := s.Reader(s.led)
	ov.overlay = map[vdisk.PageID]*pageImage{}
	if _, _, ok := ov.Derived(); ok {
		t.Fatal("overlay view must not use the derived cache")
	}
}
