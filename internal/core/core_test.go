package core

import (
	"fmt"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"pathdb/internal/rng"
	"pathdb/internal/stats"
	"pathdb/internal/storage"
	"pathdb/internal/vdisk"
	"pathdb/internal/xmltree"
	"pathdb/internal/xpath"
)

// --- fixtures ---------------------------------------------------------------

func newDisk(pageSize int) *vdisk.Disk {
	return vdisk.New(vdisk.DefaultCostModel(), stats.NewLedger(), pageSize)
}

func buildTree(seed uint64, n int) (*xmltree.Dictionary, *xmltree.Node) {
	r := rng.New(seed)
	dict := xmltree.NewDictionary()
	tags := []xmltree.TagID{dict.Intern("a"), dict.Intern("b"), dict.Intern("c"), dict.Intern("d")}
	doc := xmltree.NewDocument()
	root := xmltree.NewElement(tags[0])
	doc.AppendChild(root)
	nodes := []*xmltree.Node{root}
	for i := 1; i < n; i++ {
		parent := nodes[r.Intn(len(nodes))]
		e := xmltree.NewElement(tags[r.Intn(len(tags))])
		parent.AppendChild(e)
		if r.Bool(0.3) {
			e.AppendChild(xmltree.NewText("t"))
		}
		nodes = append(nodes, e)
	}
	return dict, doc
}

func importTree(t testing.TB, dict *xmltree.Dictionary, doc *xmltree.Node, pageSize int, layout storage.Layout) *storage.Store {
	t.Helper()
	st, err := storage.Import(newDisk(pageSize), dict, doc, storage.ImportOptions{
		PageSize: pageSize, Layout: layout, Seed: 99,
	})
	if err != nil {
		t.Fatalf("Import: %v", err)
	}
	return st
}

// --- logical reference evaluation --------------------------------------------

func logicalAxisNodes(n *xmltree.Node, axis xpath.Axis) []*xmltree.Node {
	var out []*xmltree.Node
	switch axis {
	case xpath.Self:
		out = []*xmltree.Node{n}
	case xpath.Child:
		out = append(out, n.Children...)
	case xpath.Descendant, xpath.DescendantOrSelf:
		n.Walk(func(m *xmltree.Node) bool {
			if m != n || axis == xpath.DescendantOrSelf {
				out = append(out, m)
			}
			return true
		})
	case xpath.Parent:
		if n.Parent != nil {
			out = []*xmltree.Node{n.Parent}
		}
	case xpath.Ancestor, xpath.AncestorOrSelf:
		start := n.Parent
		if axis == xpath.AncestorOrSelf {
			start = n
		}
		for p := start; p != nil; p = p.Parent {
			out = append(out, p)
		}
	case xpath.FollowingSibling, xpath.PrecedingSibling:
		if n.Parent == nil {
			return nil
		}
		sibs := n.Parent.Children
		idx := -1
		for i, s := range sibs {
			if s == n {
				idx = i
			}
		}
		if idx < 0 {
			return nil
		}
		if axis == xpath.FollowingSibling {
			out = append(out, sibs[idx+1:]...)
		} else {
			out = append(out, sibs[:idx]...)
		}
	case xpath.AttributeAxis:
		out = append(out, n.Attrs...)
	}
	return out
}

func evalPathLogical(doc *xmltree.Node, path []xpath.Step) []*xmltree.Node {
	cur := []*xmltree.Node{doc}
	for _, s := range path {
		var next []*xmltree.Node
		seen := map[*xmltree.Node]bool{}
		for _, n := range cur {
			for _, m := range logicalAxisNodes(n, s.Axis) {
				if s.Test.Matches(m.Kind, m.Tag) && !seen[m] {
					seen[m] = true
					next = append(next, m)
				}
			}
		}
		cur = next
	}
	return cur
}

// resultKeySet converts plan results to a sorted identity-set: the node's
// kind|ord|tag|text signature obtained by swizzling.
func resultKeySet(st *storage.Store, rs []Result) []string {
	keys := make([]string, len(rs))
	for i, r := range rs {
		c := st.Swizzle(r.Node)
		keys[i] = fmt.Sprintf("%d|%s|%d|%s", c.Kind(), c.OrdKey(), c.Tag(), c.Text())
	}
	sort.Strings(keys)
	return keys
}

func logicalKeySet(doc *xmltree.Node, nodes []*xmltree.Node) []string {
	// Recompute ord keys the same way the importer does.
	ords := map[*xmltree.Node]string{}
	var walk func(n *xmltree.Node, ord string)
	walk = func(n *xmltree.Node, ord string) {
		for i, ch := range n.Children {
			k := ord
			if k != "" {
				k += "."
			}
			k += fmt.Sprintf("%d", (i+1)*2)
			ords[ch] = k
			walk(ch, k)
		}
	}
	walk(doc, "")
	keys := make([]string, len(nodes))
	for i, n := range nodes {
		keys[i] = fmt.Sprintf("%d|%s|%d|%s", n.Kind, ords[n], n.Tag, n.Text)
	}
	sort.Strings(keys)
	return keys
}

func runStrategy(t testing.TB, st *storage.Store, path []xpath.Step, strat Strategy, opts PlanOptions) []Result {
	t.Helper()
	st.ResetForRun()
	plan := BuildPlan(st, path, []storage.NodeID{st.Root()}, strat, opts)
	return plan.Run()
}

var allStrategies = []Strategy{StrategySimple, StrategySchedule, StrategyScan}

// checkAllStrategies asserts that every strategy returns exactly the
// logical reference result set.
func checkAllStrategies(t *testing.T, dict *xmltree.Dictionary, doc *xmltree.Node, st *storage.Store, pathSrc string, opts PlanOptions) {
	t.Helper()
	parsed := xpath.MustParse(dict, pathSrc)
	path := parsed.Simplify().Steps
	want := logicalKeySet(doc, evalPathLogical(doc, path))
	for _, strat := range allStrategies {
		got := resultKeySet(st, runStrategy(t, st, path, strat, opts))
		if strings.Join(got, "\n") != strings.Join(want, "\n") {
			t.Fatalf("%v on %q:\nwant (%d): %v\ngot (%d): %v",
				strat, pathSrc, len(want), want, len(got), got)
		}
	}
}

// --- strategy equivalence ----------------------------------------------------

func TestStrategiesAgreeOnFixedPaths(t *testing.T) {
	dict, doc := buildTree(21, 400)
	st := importTree(t, dict, doc, 512, storage.LayoutShuffled)
	for _, src := range []string{
		"/a",
		"/a/b",
		"/a//b",
		"//c",
		"//b//c",
		"/a/descendant-or-self::node()",
		"//d/..",
		"//c/ancestor::a",
		"//b/following-sibling::c",
		"//b/preceding-sibling::*",
		"//text()",
		"/*/*",
	} {
		checkAllStrategies(t, dict, doc, st, src, PlanOptions{})
	}
}

func TestStrategiesAgreeProperty(t *testing.T) {
	paths := []string{
		"/a//b", "//c", "/a/b/c", "//b/..", "//d//b", "/a//*",
		"//c/self::c", "//a/ancestor-or-self::a",
	}
	f := func(seed uint64, pi uint8) bool {
		dict, doc := buildTree(seed, 150)
		st := importTree(t, dict, doc, 256, storage.LayoutShuffled)
		src := paths[int(pi)%len(paths)]
		parsed := xpath.MustParse(dict, src).Simplify()
		want := logicalKeySet(doc, evalPathLogical(doc, parsed.Steps))
		variants := []PlanOptions{{}, {Speculative: true}, {K: 4}, {MemLimit: 16}}
		for _, strat := range allStrategies {
			for vi, opts := range variants {
				got := resultKeySet(st, runStrategy(t, st, parsed.Steps, strat, opts))
				if strings.Join(got, "\n") != strings.Join(want, "\n") {
					t.Logf("seed=%d path=%q strat=%v variant=%d\nwant %v\ngot  %v", seed, src, strat, vi, want, got)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSpeculativeScheduleAgrees(t *testing.T) {
	dict, doc := buildTree(33, 300)
	st := importTree(t, dict, doc, 512, storage.LayoutShuffled)
	for _, src := range []string{"/a//b", "//c", "/a/b/c", "//b/.."} {
		parsed := xpath.MustParse(dict, src).Simplify()
		want := logicalKeySet(doc, evalPathLogical(doc, parsed.Steps))
		got := resultKeySet(st, runStrategy(t, st, parsed.Steps, StrategySchedule, PlanOptions{Speculative: true}))
		if strings.Join(got, "\n") != strings.Join(want, "\n") {
			t.Fatalf("speculative schedule on %q differs:\nwant %v\ngot  %v", src, want, got)
		}
	}
}

func TestFallbackModeAgrees(t *testing.T) {
	dict, doc := buildTree(55, 400)
	st := importTree(t, dict, doc, 512, storage.LayoutShuffled)
	parsed := xpath.MustParse(dict, "//b").Simplify()
	want := logicalKeySet(doc, evalPathLogical(doc, parsed.Steps))

	// A tiny S budget must force fallback on an XScan plan and still
	// return the right answer.
	st.ResetForRun()
	plan := BuildPlan(st, parsed.Steps, []storage.NodeID{st.Root()}, StrategyScan, PlanOptions{MemLimit: 4})
	got := resultKeySet(st, plan.Run())
	if !plan.State().Fallback() {
		t.Fatal("MemLimit=4 did not trigger fallback")
	}
	if st.Ledger().FallbackEvents != 1 {
		t.Fatalf("fallback events = %d", st.Ledger().FallbackEvents)
	}
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Fatalf("fallback results differ:\nwant %v\ngot  %v", want, got)
	}
}

func TestFallbackOnScheduleAgrees(t *testing.T) {
	dict, doc := buildTree(56, 400)
	st := importTree(t, dict, doc, 512, storage.LayoutShuffled)
	parsed := xpath.MustParse(dict, "//c").Simplify()
	want := logicalKeySet(doc, evalPathLogical(doc, parsed.Steps))
	st.ResetForRun()
	plan := BuildPlan(st, parsed.Steps, []storage.NodeID{st.Root()}, StrategySchedule,
		PlanOptions{Speculative: true, MemLimit: 2})
	got := resultKeySet(st, plan.Run())
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Fatalf("schedule fallback results differ:\nwant %v\ngot  %v", want, got)
	}
}

func TestNoFirstStepAllOptStillCorrect(t *testing.T) {
	dict, doc := buildTree(77, 250)
	st := importTree(t, dict, doc, 512, storage.LayoutShuffled)
	parsed := xpath.MustParse(dict, "//b") // keep d-o-s step: no Simplify
	want := logicalKeySet(doc, evalPathLogical(doc, parsed.Steps))
	for _, disable := range []bool{false, true} {
		st.ResetForRun()
		plan := BuildPlan(st, parsed.Steps, []storage.NodeID{st.Root()}, StrategyScan,
			PlanOptions{NoFirstStepAllOpt: disable})
		if !disable && !plan.Assembly.FirstStepAll {
			t.Fatal("// optimisation not detected")
		}
		if disable && plan.Assembly.FirstStepAll {
			t.Fatal("// optimisation not disabled")
		}
		got := resultKeySet(st, plan.Run())
		if strings.Join(got, "\n") != strings.Join(want, "\n") {
			t.Fatalf("disable=%v results differ", disable)
		}
	}
}

// --- operator-level behaviour -------------------------------------------------

func TestInstancePredicatesTable1(t *testing.T) {
	// The taxonomy of Table 1: flags for representative instances of
	// /A//B (|π| = 2). NodeIDs are symbolic; borders are marked by flags.
	d1 := storage.MakeNodeID(4, 1)
	a2 := storage.MakeNodeID(2, 1)
	a3 := storage.MakeNodeID(2, 2)
	a1 := storage.MakeNodeID(2, 0) // ProxyParent border
	d3 := storage.MakeNodeID(4, 3) // ProxyChild border

	cases := []struct {
		name       string
		p          Instance
		full, l, r bool
	}{
		{"row1 context only", ContextInstance(d1), false, true, true},
		{"row2 after step 1", Instance{SL: 0, NL: d1, SR: 1, NR: a2}, false, true, true},
		{"row5 full", Instance{SL: 0, NL: d1, SR: 2, NR: a3}, true, true, true},
		{"row7 right-incomplete", Instance{SL: 0, NL: d1, SR: 0, NR: d3, NRBorder: true}, false, true, false},
		{"row9 left-incomplete", Instance{SL: 1, NL: a1, NLBorder: true, SR: 2, NR: a3}, false, false, true},
		{"speculative seed", Instance{SL: 1, NL: a1, NLBorder: true, SR: 1, NR: a1, NRBorder: true}, false, false, false},
	}
	for _, c := range cases {
		if got := c.p.Full(2); got != c.full {
			t.Errorf("%s: Full = %v, want %v", c.name, got, c.full)
		}
		if got := c.p.LeftComplete(); got != c.l {
			t.Errorf("%s: LeftComplete = %v, want %v", c.name, got, c.l)
		}
		if got := c.p.RightComplete(); got != c.r {
			t.Errorf("%s: RightComplete = %v, want %v", c.name, got, c.r)
		}
		if (c.l && c.r) != c.p.Complete() {
			t.Errorf("%s: Complete inconsistent", c.name)
		}
	}
}

func TestContextOpEmitsSeedInstances(t *testing.T) {
	dict, doc := buildTree(1, 20)
	st := importTree(t, dict, doc, 8192, storage.LayoutContiguous)
	es := NewEvalState(st, nil)
	ids := []storage.NodeID{st.Root(), storage.MakeNodeID(1, 1)}
	op := NewContextOp(es, ids)
	op.Open()
	for i := 0; ; i++ {
		in, ok := op.Next()
		if !ok {
			if i != 2 {
				t.Fatalf("emitted %d instances", i)
			}
			break
		}
		if in.SL != 0 || in.SR != 0 || in.NL != ids[i] || in.NR != ids[i] || !in.Complete() {
			t.Fatalf("bad context instance %v", in)
		}
	}
	op.Rewind()
	if _, ok := op.Next(); !ok {
		t.Fatal("Rewind failed")
	}
	op.Close()
}

func TestSortContexts(t *testing.T) {
	ids := []storage.NodeID{
		storage.MakeNodeID(9, 0), storage.MakeNodeID(1, 5), storage.MakeNodeID(4, 2),
	}
	SortContexts(ids)
	if ids[0].Page() != 1 || ids[1].Page() != 4 || ids[2].Page() != 9 {
		t.Fatalf("sorted = %v", ids)
	}
}

func TestSortByDocumentOrder(t *testing.T) {
	dict, doc := buildTree(13, 200)
	st := importTree(t, dict, doc, 512, storage.LayoutShuffled)
	parsed := xpath.MustParse(dict, "//b").Simplify()
	st.ResetForRun()
	plan := BuildPlan(st, parsed.Steps, []storage.NodeID{st.Root()}, StrategyScan,
		PlanOptions{SortResults: true})
	rs := plan.Run()
	if len(rs) < 2 {
		t.Skip("need at least 2 results")
	}
	for i := 1; i < len(rs); i++ {
		a, b := rs[i-1].Ord.String(), rs[i].Ord.String()
		ca, cb := st.Swizzle(rs[i-1].Node), st.Swizzle(rs[i].Node)
		_ = ca
		_ = cb
		if a == b {
			t.Fatalf("duplicate ord keys %s", a)
		}
	}
	// Verify true document order via ordpath comparison on cursors.
	for i := 1; i < len(rs); i++ {
		if cmpOrd(rs[i-1], rs[i]) >= 0 {
			t.Fatalf("results out of document order at %d", i)
		}
	}
}

func cmpOrd(a, b Result) int {
	as, bs := a.Ord, b.Ord
	for i := 0; i < len(as) && i < len(bs); i++ {
		if as[i] != bs[i] {
			if as[i] < bs[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(as) < len(bs):
		return -1
	case len(as) > len(bs):
		return 1
	}
	return 0
}

func TestDistinctRemovesDuplicates(t *testing.T) {
	// //b/.. can produce the same parent several times in a Simple plan;
	// Distinct must deduplicate. Compare against logical set semantics.
	dict, doc := buildTree(91, 300)
	st := importTree(t, dict, doc, 512, storage.LayoutContiguous)
	checkAllStrategies(t, dict, doc, st, "//b/..", PlanOptions{})
}

func TestCountMatchesRunLength(t *testing.T) {
	dict, doc := buildTree(17, 250)
	st := importTree(t, dict, doc, 512, storage.LayoutShuffled)
	parsed := xpath.MustParse(dict, "//c").Simplify()
	st.ResetForRun()
	n := BuildPlan(st, parsed.Steps, []storage.NodeID{st.Root()}, StrategyScan, PlanOptions{}).Count()
	st.ResetForRun()
	rs := BuildPlan(st, parsed.Steps, []storage.NodeID{st.Root()}, StrategyScan, PlanOptions{}).Run()
	if n != len(rs) {
		t.Fatalf("Count = %d, Run len = %d", n, len(rs))
	}
}

func TestZeroLengthPath(t *testing.T) {
	dict, doc := buildTree(3, 30)
	st := importTree(t, dict, doc, 8192, storage.LayoutContiguous)
	for _, strat := range allStrategies {
		st.ResetForRun()
		plan := BuildPlan(st, nil, []storage.NodeID{st.Root()}, strat, PlanOptions{})
		rs := plan.Run()
		if len(rs) != 1 || rs[0].Node != st.Root() {
			t.Fatalf("%v: zero-length path results = %v", strat, rs)
		}
	}
}

func TestRelativeContexts(t *testing.T) {
	// Evaluate a relative path from several non-root contexts.
	dict, doc := buildTree(47, 300)
	st := importTree(t, dict, doc, 512, storage.LayoutShuffled)
	parsed := xpath.MustParse(dict, "b//c").Simplify()

	// Contexts: all <a> elements, gathered via an absolute query first.
	st.ResetForRun()
	ctxPlan := BuildPlan(st, xpath.MustParse(dict, "//a").Simplify().Steps,
		[]storage.NodeID{st.Root()}, StrategyScan, PlanOptions{})
	var ctxs []storage.NodeID
	for _, r := range ctxPlan.Run() {
		ctxs = append(ctxs, r.Node)
	}
	if len(ctxs) == 0 {
		t.Skip("no <a> contexts in this tree")
	}

	// Logical reference: same contexts on the logical tree.
	var logicalCtxs []*xmltree.Node
	doc.Walk(func(n *xmltree.Node) bool {
		if n.Kind == xmltree.Element && n.Tag == dict.Intern("a") {
			logicalCtxs = append(logicalCtxs, n)
		}
		return true
	})
	cur := logicalCtxs
	for _, s := range parsed.Steps {
		var next []*xmltree.Node
		seen := map[*xmltree.Node]bool{}
		for _, n := range cur {
			for _, m := range logicalAxisNodes(n, s.Axis) {
				if s.Test.Matches(m.Kind, m.Tag) && !seen[m] {
					seen[m] = true
					next = append(next, m)
				}
			}
		}
		cur = next
	}
	want := logicalKeySet(doc, cur)

	for _, strat := range allStrategies {
		st.ResetForRun()
		plan := BuildPlan(st, parsed.Steps, ctxs, strat, PlanOptions{})
		got := resultKeySet(st, plan.Run())
		if strings.Join(got, "\n") != strings.Join(want, "\n") {
			t.Fatalf("%v relative eval differs:\nwant %v\ngot  %v", strat, want, got)
		}
	}
}

func TestStrategyString(t *testing.T) {
	if StrategySimple.String() != "simple" || StrategySchedule.String() != "xschedule" || StrategyScan.String() != "xscan" {
		t.Fatal("strategy names")
	}
}

// TestFollowingPrecedingEndToEnd verifies the parser's rewrite of the
// document-order axes against a direct definition: following(x) = nodes
// whose preorder interval starts after x's ends (and mirrored for
// preceding), evaluated on the logical tree.
func TestFollowingPrecedingEndToEnd(t *testing.T) {
	dict, doc := buildTree(83, 250)
	st := importTree(t, dict, doc, 512, storage.LayoutShuffled)

	// Preorder enter/exit numbering of the logical tree.
	enter := map[*xmltree.Node]int{}
	exit := map[*xmltree.Node]int{}
	clock := 0
	var number func(n *xmltree.Node)
	number = func(n *xmltree.Node) {
		clock++
		enter[n] = clock
		for _, ch := range n.Children {
			number(ch)
		}
		clock++
		exit[n] = clock
	}
	number(doc)

	bTag, cTag := dict.Intern("b"), dict.Intern("c")
	for _, dir := range []string{"following", "preceding"} {
		src := "//b/" + dir + "::c"
		parsed := xpath.MustParse(dict, src).Simplify()

		// Direct reference.
		want := map[*xmltree.Node]bool{}
		doc.Walk(func(b *xmltree.Node) bool {
			if b.Kind != xmltree.Element || b.Tag != bTag {
				return true
			}
			doc.Walk(func(c *xmltree.Node) bool {
				if c.Kind != xmltree.Element || c.Tag != cTag {
					return true
				}
				if dir == "following" && enter[c] > exit[b] {
					want[c] = true
				}
				if dir == "preceding" && exit[c] < enter[b] {
					want[c] = true
				}
				return true
			})
			return true
		})
		var wantNodes []*xmltree.Node
		for n := range want {
			wantNodes = append(wantNodes, n)
		}
		wantKeys := logicalKeySet(doc, wantNodes)

		for _, strat := range allStrategies {
			got := resultKeySet(st, runStrategy(t, st, parsed.Steps, strat, PlanOptions{}))
			if strings.Join(got, "\n") != strings.Join(wantKeys, "\n") {
				t.Fatalf("%s via %v: got %d results, want %d", src, strat, len(got), len(wantKeys))
			}
		}
	}
}

// --- predicates ---------------------------------------------------------------

// evalPathLogicalPred evaluates a path with predicate support on the
// logical tree (the reference for predicate tests).
func evalPathLogicalPred(doc *xmltree.Node, path []xpath.Step) []*xmltree.Node {
	stringValue := func(n *xmltree.Node) string {
		if n.Kind == xmltree.Attribute || n.Kind == xmltree.Text ||
			n.Kind == xmltree.Comment || n.Kind == xmltree.ProcInst {
			return n.Text
		}
		return n.TextContent()
	}
	var holds func(n *xmltree.Node, p xpath.Predicate) bool
	var eval func(ctxs []*xmltree.Node, steps []xpath.Step) []*xmltree.Node
	eval = func(ctxs []*xmltree.Node, steps []xpath.Step) []*xmltree.Node {
		cur := ctxs
		for _, s := range steps {
			var next []*xmltree.Node
			seen := map[*xmltree.Node]bool{}
			for _, n := range cur {
				for _, m := range logicalAxisNodes(n, s.Axis) {
					if !s.Test.Matches(m.Kind, m.Tag) || seen[m] {
						continue
					}
					ok := true
					for _, p := range s.Predicates {
						if !holds(m, p) {
							ok = false
							break
						}
					}
					if !ok {
						continue
					}
					seen[m] = true
					next = append(next, m)
				}
			}
			cur = next
		}
		return cur
	}
	holds = func(n *xmltree.Node, p xpath.Predicate) bool {
		for _, branch := range p.Paths {
			for _, r := range eval([]*xmltree.Node{n}, branch.Simplify().Steps) {
				if !p.HasLit || stringValue(r) == p.Literal {
					return true
				}
			}
		}
		return false
	}
	return eval([]*xmltree.Node{doc}, path)
}

func TestPredicatesAllStrategies(t *testing.T) {
	dict := xmltree.NewDictionary()
	b := xmltree.NewBuilder(dict)
	b.Begin("lib")
	for i := 0; i < 40; i++ {
		b.Begin("book")
		if i%3 == 0 {
			b.Attr("lang", "en")
		}
		b.Leaf("title", fmt.Sprintf("t%d", i))
		if i%2 == 0 {
			b.Begin("meta").Leaf("year", fmt.Sprintf("%d", 1990+i%5)).End()
		}
		b.End()
	}
	b.End()
	doc := b.Doc()
	st := importTree(t, dict, doc, 256, storage.LayoutShuffled)

	for _, src := range []string{
		`/lib/book[meta]`,
		`/lib/book[@lang]`,
		`/lib/book[@lang="en"]/title`,
		`//book[meta/year="1992"]`,
		`//book[meta][@lang]`,
		`//book[title="t9"]`,
	} {
		parsed := xpath.MustParse(dict, src).Simplify()
		want := logicalKeySet(doc, evalPathLogicalPred(doc, parsed.Steps))
		for _, strat := range allStrategies {
			got := resultKeySet(st, runStrategy(t, st, parsed.Steps, strat, PlanOptions{}))
			if strings.Join(got, "\n") != strings.Join(want, "\n") {
				t.Fatalf("%v on %q:\nwant %v\ngot  %v", strat, src, want, got)
			}
		}
	}
}

func TestPredicatesPropertyRandomTrees(t *testing.T) {
	srcs := []string{"//a[b]", "//b[c]/..", "/a//c[d]", "//a[b/c]", `//b[.="t"]`}
	f := func(seed uint64, pi uint8) bool {
		dict, doc := buildTree(seed, 120)
		st := importTree(t, dict, doc, 256, storage.LayoutShuffled)
		src := srcs[int(pi)%len(srcs)]
		parsed := xpath.MustParse(dict, src).Simplify()
		want := logicalKeySet(doc, evalPathLogicalPred(doc, parsed.Steps))
		for _, strat := range allStrategies {
			got := resultKeySet(st, runStrategy(t, st, parsed.Steps, strat, PlanOptions{}))
			if strings.Join(got, "\n") != strings.Join(want, "\n") {
				t.Logf("seed=%d src=%q strat=%v\nwant %v\ngot  %v", seed, src, strat, want, got)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestPredicateDescribe(t *testing.T) {
	dict, doc := buildTree(4, 50)
	st := importTree(t, dict, doc, 512, storage.LayoutNatural)
	steps := xpath.MustParse(dict, "/a//b[c]").Simplify().Steps
	desc := BuildPlan(st, steps, []storage.NodeID{st.Root()}, StrategySchedule, PlanOptions{}).Describe(dict)
	if !strings.Contains(desc, "PredFilter(step 2, 1 predicates)") {
		t.Fatalf("describe missing filter:\n%s", desc)
	}
}
