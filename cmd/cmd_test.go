// Package cmd_test runs the command-line tools end to end through `go
// run`, checking that every binary builds and produces sane output on a
// real document. These are integration tests; skip with -short.
package cmd_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// run executes a tool via `go run` from the repository root.
func run(t *testing.T, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run"}, args...)...)
	cmd.Dir = ".." // repo root
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run %v: %v\n%s", args, err, out)
	}
	return string(out)
}

func TestCommandLineTools(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	dir := t.TempDir()
	docPath := filepath.Join(dir, "doc.xml")

	// xmarkgen writes a document.
	out := run(t, "./cmd/xmarkgen", "-sf", "0.2", "-scale", "0.01", "-seed", "5", "-o", docPath)
	if out != "" {
		t.Fatalf("xmarkgen output: %q", out)
	}
	data, err := os.ReadFile(docPath)
	if err != nil || !strings.Contains(string(data), "<site>") {
		t.Fatalf("generated doc bad: %v", err)
	}

	// xpathq evaluates a query against it, for each strategy plus auto.
	var counts []string
	for _, strat := range []string{"simple", "xschedule", "xscan", "auto"} {
		out = run(t, "./cmd/xpathq", "-xml", docPath, "-q", "/site/regions//item",
			"-strategy", strat, "-explain", "-plan")
		line := ""
		for _, l := range strings.Split(out, "\n") {
			if strings.HasPrefix(l, "count(") {
				line = l
			}
		}
		if line == "" {
			t.Fatalf("xpathq (%s) printed no count:\n%s", strat, out)
		}
		counts = append(counts, strings.Fields(line)[2])
		if !strings.Contains(out, "cost:") {
			t.Fatalf("xpathq (%s) printed no cost report", strat)
		}
	}
	for _, c := range counts[1:] {
		if c != counts[0] {
			t.Fatalf("strategies disagree across CLI runs: %v", counts)
		}
	}

	// xpathq -print serializes results.
	out = run(t, "./cmd/xpathq", "-xml", docPath, "-q", "/site/regions/africa/item", "-print")
	if !strings.Contains(out, "<item") {
		t.Fatalf("xpathq -print produced no items:\n%.300s", out)
	}

	// xvolume inspects the volume.
	out = run(t, "./cmd/xvolume", "-xml", docPath, "-tags")
	for _, want := range []string{"volume:", "records:", "dictionary:", "item"} {
		if !strings.Contains(out, want) {
			t.Fatalf("xvolume missing %q:\n%s", want, out)
		}
	}

	// xbench runs a tiny figure.
	out = run(t, "./cmd/xbench", "-scale", "0.01", "-quick", "-fig", "11")
	if !strings.Contains(out, "xschedule") || !strings.Contains(out, "0.25") {
		t.Fatalf("xbench figure output:\n%s", out)
	}
}

func TestShellSession(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	cmd := exec.Command("go", "run", "./cmd/xshell", "-xmark", "0.2", "-scale", "0.01")
	cmd.Dir = ".."
	cmd.Stdin = strings.NewReader(
		"/site/regions//item\n" +
			"\\strategy xscan\n" +
			"\\plan /site\n" +
			"\\insert /site <extra/>\n" +
			"/site/extra\n" +
			"\\quit\n")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("xshell: %v\n%s", err, out)
	}
	s := string(out)
	for _, want := range []string{"pathdb shell", "count = ", "XScan(", "inserted", "count = 1"} {
		if !strings.Contains(s, want) {
			t.Fatalf("shell output missing %q:\n%s", want, s)
		}
	}
}
