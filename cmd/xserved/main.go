// Command xserved serves a loaded document over HTTP — the networked form
// of the concurrent query engine (internal/server). It loads or generates
// one volume, starts an engine over it, and answers:
//
//	POST /query    {"path": "/site/regions//item", "strategy": "auto",
//	                "limit": 10, "timeout_ms": 250, "sorted": true}
//	POST /update   {"op": "insert", "parent": "/site", "xml": "<note/>"}
//	               {"op": "delete", "path": "/site/note"}
//	GET  /metrics  Prometheus text exposition (engine + txn + cost ledger + server)
//	GET  /healthz  200 while serving, 503 once draining
//
// With -shards N (N > 1) it serves the same endpoints in router mode: the
// corpus is split across N fully independent volumes (replicated container
// spine, consistent-hash-placed entity collections), /query scatter-gathers
// across them with merged counts and document-order nodes, /update routes
// to the owning shard, /metrics carries per-shard series under a shard
// label plus pathdb_cluster_* aggregates, and the X-Tenant header is
// subject to per-tenant admission quotas (429 + Retry-After at the quota).
// A shard degraded by storage faults yields typed partial 200s under the
// default quorum policy ("-shard-policy all" fails instead).
//
// Updates run as MVCC transactions: each commit publishes a new volume
// version, concurrent commits batch onto shared WAL flushes (group commit),
// and in-flight queries keep reading the version they started on. A racing
// delete of an update's target is answered 409.
//
// Admission control is visible at the protocol level: a full queue is
// answered 503 with Retry-After, an expired per-request budget 504, and a
// disconnected client cancels its in-flight query (prefetches withdrawn).
// SIGINT/SIGTERM drain gracefully: in-flight queries complete, new ones
// are refused, then the engine shuts down.
//
// Usage:
//
//	xserved -xmark 0.5 -addr :8080
//	xserved -xmark 0.5 -shards 4 -addr :8080
//	xserved -xml doc.xml -inflight 8 -queue 64 -addr 127.0.0.1:0
//	curl -s localhost:8080/query -d '{"path": "/site/regions//item"}'
//	curl -s -H 'X-Tenant: alice' localhost:8080/query -d '{"path": "/site"}'
//	curl -s localhost:8080/metrics
//
// The actual listen address is printed on startup ("listening on ..."), so
// -addr :0 works for scripts and tests.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pathdb"
	"pathdb/internal/server"
	"pathdb/internal/shard"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address (host:port; port 0 picks one)")
	xmlFile := flag.String("xml", "", "XML document to load")
	xmarkSF := flag.Float64("xmark", 0, "generate an XMark document with this scale factor instead")
	scale := flag.Float64("scale", 0.1, "entity scale for -xmark")
	seed := flag.Uint64("seed", 42, "seed for -xmark and fragmented layouts")
	layoutName := flag.String("layout", "natural", "physical layout: natural, contiguous, shuffled")
	buffer := flag.Int("buffer", 0, "buffer pool pages (default 1000)")

	inflight := flag.Int("inflight", 0, "engine MaxInFlight (default 8)")
	queue := flag.Int("queue", 0, "engine QueueDepth (default 64)")
	parallel := flag.Int("parallel", 0, "engine worker-pool width per gang (default min(MaxInFlight, GOMAXPROCS))")
	maxNodes := flag.Int("max-nodes", 0, "cap on result nodes per response (default 1000)")
	maxTimeout := flag.Duration("max-timeout", 0, "cap on per-request execution budget (default 30s)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-drain budget on shutdown")

	shards := flag.Int("shards", 1, "serve N independent volumes behind a scatter-gather router (1 = single-volume mode)")
	replicas := flag.Int("replicas", 0, "consistent-hash virtual nodes per shard (default 256)")
	policy := flag.String("shard-policy", "quorum", "degraded-shard policy: quorum (partial results) or all (first error fails)")
	quorum := flag.Int("quorum", 0, "min answering shards for a partial result (default shards/2+1)")
	quotaCap := flag.Int("quota", 0, "router admission capacity across all tenants (default 64)")
	tenantShare := flag.Float64("tenant-share", 0, "max fraction of -quota one tenant may hold (default 0.5)")
	flag.Parse()

	layout, ok := map[string]pathdb.Layout{
		"natural": pathdb.Natural, "contiguous": pathdb.Contiguous, "shuffled": pathdb.Shuffled,
	}[*layoutName]
	if !ok {
		fail("unknown -layout %q", *layoutName)
	}
	if *shards < 1 {
		fail("-shards must be >= 1")
	}

	opts := pathdb.Options{Layout: layout, LayoutSeed: *seed, BufferPages: *buffer}
	engCfg := pathdb.EngineConfig{MaxInFlight: *inflight, QueueDepth: *queue, Parallel: *parallel}
	srvOpts := server.Options{MaxNodes: *maxNodes, MaxTimeout: *maxTimeout}

	var xmlData []byte
	if *xmlFile != "" {
		var err error
		if xmlData, err = os.ReadFile(*xmlFile); err != nil {
			fail("%v", err)
		}
	} else if *xmarkSF <= 0 {
		fail("need -xml or -xmark")
	}

	// The service handler plus its drain hook — single-volume Server or
	// sharded Router, same endpoints either way.
	var handler http.Handler
	var shutdown func(context.Context) error

	if *shards > 1 {
		pol, err := shard.ParsePolicy(*policy)
		if err != nil {
			fail("%v", err)
		}
		cfg := shard.Config{
			Shards:   *shards,
			Replicas: *replicas,
			Policy:   pol,
			Quorum:   *quorum,
			Engine:   engCfg,
		}
		var cl *shard.Cluster
		if xmlData != nil {
			cl, err = shard.NewXML(xmlData, opts, cfg)
		} else {
			cl, err = shard.NewXMark(pathdb.XMarkConfig{ScaleFactor: *xmarkSF, Seed: *seed, EntityScale: *scale}, opts, cfg)
		}
		if err != nil {
			fail("%v", err)
		}
		pages := make([]string, 0, cl.Shards())
		for _, sm := range cl.Metrics() {
			pages = append(pages, fmt.Sprintf("%d", sm.Pages))
		}
		fmt.Printf("cluster: %d shards, pages per shard: %s, policy %s\n",
			cl.Shards(), strings.Join(pages, "/"), cfg.Policy)

		rt := server.NewRouter(cl, srvOpts, shard.QuotaConfig{Capacity: *quotaCap, MaxTenantShare: *tenantShare})
		handler, shutdown = rt, rt.Shutdown
	} else {
		var db *pathdb.DB
		var err error
		if xmlData != nil {
			db, err = pathdb.LoadXML(xmlData, opts)
		} else {
			db, err = pathdb.GenerateXMark(pathdb.XMarkConfig{ScaleFactor: *xmarkSF, Seed: *seed, EntityScale: *scale}, opts)
		}
		if err != nil {
			fail("%v", err)
		}
		fmt.Printf("document: %d pages\n", db.Pages())

		eng := db.NewEngine(engCfg)
		db.ResetStats() // cold start after the cost model's offline pass
		srv := server.New(db, eng, srvOpts)
		handler, shutdown = srv, srv.Shutdown
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail("%v", err)
	}
	// Flushed immediately so wrappers (tests, scripts) can scrape the
	// resolved port when -addr ends in :0.
	fmt.Printf("listening on %s\n", ln.Addr())

	hs := &http.Server{Handler: handler}
	errs := make(chan error, 1)
	go func() { errs <- hs.Serve(ln) }()

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigs:
		fmt.Printf("received %v, draining\n", sig)
	case err := <-errs:
		fail("serve: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Drain order: first the query service (in-flight queries finish, new
	// ones get 503, the engines close), then the HTTP listener itself.
	if err := shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "xserved: drain incomplete: %v\n", err)
	}
	if err := hs.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "xserved: http shutdown: %v\n", err)
	}
	fmt.Println("drained")
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "xserved: "+format+"\n", args...)
	os.Exit(1)
}
