package bench

import (
	"fmt"
	"io"

	"pathdb/internal/core"
	"pathdb/internal/stats"
	"pathdb/internal/storage"
	"pathdb/internal/vdisk"
	"pathdb/internal/xmltree"
	"pathdb/internal/xpath"
)

// AblationRow is one measured configuration of an ablation study.
type AblationRow struct {
	Label    string
	Count    int
	Total    stats.Ticks
	CPU      stats.Ticks
	Clusters int64
	Extra    string
}

// RenderAblation writes rows as a compact table.
func RenderAblation(out io.Writer, title string, rows []AblationRow) {
	fmt.Fprintf(out, "# Ablation — %s\n", title)
	fmt.Fprintf(out, "%-28s %10s %10s %8s %9s %s\n", "config", "total[s]", "CPU[s]", "count", "clusters", "notes")
	for _, r := range rows {
		fmt.Fprintf(out, "%-28s %10.3f %10.3f %8d %9d %s\n",
			r.Label, r.Total.Seconds(), r.CPU.Seconds(), r.Count, r.Clusters, r.Extra)
	}
}

// AblationK sweeps XSchedule's queue fill target k (paper default 100,
// Sec. 5.3.4.2). The paper notes that k barely matters for a single
// context node, so the sweep uses a multi-context workload where it does:
// a relative path evaluated from every item element (the situation of a
// path nested in a larger plan).
func (w *Workload) AblationK(sf float64, ks []int) []AblationRow {
	st, dict := w.Store(sf)

	// Gather the contexts once: all item elements.
	st.ResetForRun()
	ctxPlan := core.BuildPlan(st, xpath.MustParse(dict, "/site/regions//item").Simplify().Steps,
		[]storage.NodeID{st.Root()}, core.StrategyScan, core.PlanOptions{})
	var ctxs []storage.NodeID
	for _, r := range ctxPlan.Run() {
		ctxs = append(ctxs, r.Node)
	}
	steps := xpath.MustParse(dict, "description//keyword").Simplify().Steps

	var rows []AblationRow
	for _, k := range ks {
		st.ResetForRun()
		plan := core.BuildPlan(st, steps, ctxs, core.StrategySchedule, core.PlanOptions{K: k})
		count := plan.Count()
		led := st.Ledger()
		rows = append(rows, AblationRow{
			Label: fmt.Sprintf("k=%d (%d contexts)", k, len(ctxs)),
			Count: count, Total: led.Total(), CPU: led.CPU, Clusters: led.ClustersVisited,
		})
	}
	return rows
}

// AblationLayout measures every strategy under different physical layouts
// (fresh import per layout), quantifying how fragmentation drives the gap
// between the plans.
func AblationLayout(cfg Config, sf float64, q Query) []AblationRow {
	var rows []AblationRow
	for _, layout := range []storage.Layout{storage.LayoutContiguous, storage.LayoutNatural, storage.LayoutShuffled} {
		c := cfg
		c.Layout = layout
		w := NewWorkload(c)
		for _, strat := range []core.Strategy{core.StrategySimple, core.StrategySchedule, core.StrategyScan} {
			m := w.Run(sf, q, strat)
			rows = append(rows, AblationRow{
				Label: fmt.Sprintf("%s/%s", layout, strat),
				Count: m.Count, Total: m.Total, CPU: m.CPU,
			})
		}
	}
	return rows
}

// AblationSpeculative compares XSchedule with and without speculative
// left-incomplete generation (Sec. 5.4.4) on a revisit-prone query: the
// parent step sends paths back into clusters visited for an earlier step.
func (w *Workload) AblationSpeculative(sf float64) []AblationRow {
	st, dict := w.Store(sf)
	q := "/site/regions//item/.."
	steps := xpath.MustParse(dict, q).Simplify().Steps
	var rows []AblationRow
	for _, spec := range []bool{false, true} {
		st.ResetForRun()
		plan := core.BuildPlan(st, steps, []storage.NodeID{st.Root()}, core.StrategySchedule,
			core.PlanOptions{Speculative: spec})
		count := plan.Count()
		led := st.Ledger()
		rows = append(rows, AblationRow{
			Label: fmt.Sprintf("speculative=%v", spec),
			Count: count, Total: led.Total(), CPU: led.CPU,
			Clusters: led.ClustersVisited,
			Extra:    fmt.Sprintf("spec-instances=%d", led.SpecInstances),
		})
	}
	return rows
}

// AblationFallback sweeps XAssembly's memory limit on an XScan plan
// (Sec. 5.4.6): small limits trigger the degradation to nested-loop
// re-evaluation; results stay identical.
func (w *Workload) AblationFallback(sf float64, limits []int) []AblationRow {
	st, dict := w.Store(sf)
	steps := xpath.MustParse(dict, Q7.Paths[0]).Simplify().Steps
	var rows []AblationRow
	for _, lim := range limits {
		st.ResetForRun()
		plan := core.BuildPlan(st, steps, []storage.NodeID{st.Root()}, core.StrategyScan,
			core.PlanOptions{MemLimit: lim})
		count := plan.Count()
		led := st.Ledger()
		label := "S unlimited"
		if lim > 0 {
			label = fmt.Sprintf("S limit=%d", lim)
		}
		rows = append(rows, AblationRow{
			Label: label, Count: count, Total: led.Total(), CPU: led.CPU,
			Clusters: led.ClustersVisited,
			Extra:    fmt.Sprintf("fallbacks=%d", led.FallbackEvents),
		})
	}
	return rows
}

// AblationMultiQuery evaluates Q7's three paths once with three separate
// XSchedule plans and once with a single shared I/O operator (the
// multi-query extension of Sec. 7).
func (w *Workload) AblationMultiQuery(sf float64) []AblationRow {
	st, dict := w.Store(sf)
	var rows []AblationRow

	// Three *concurrent* sessions, each with its own XSchedule plan,
	// interleaved result by result — the interference scenario the paper
	// warns about: independent plans fight over the disk arm.
	st.ResetForRun()
	count := 0
	var tops []core.Operator
	for _, src := range Q7.Paths {
		steps := xpath.MustParse(dict, src).Simplify().Steps
		plan := core.BuildPlan(st, steps, []storage.NodeID{st.Root()}, core.StrategySchedule, core.PlanOptions{})
		top := plan.Root()
		top.Open()
		tops = append(tops, top)
	}
	for remaining := len(tops); remaining > 0; {
		for i, top := range tops {
			if top == nil {
				continue
			}
			if _, ok := top.Next(); !ok {
				top.Close()
				tops[i] = nil
				remaining--
				continue
			}
			count++
		}
	}
	led := st.Ledger()
	rows = append(rows, AblationRow{
		Label: "3 concurrent XSchedule plans",
		Count: count, Total: led.Total(), CPU: led.CPU, Clusters: led.ClustersVisited,
	})

	// One shared scheduler.
	st.ResetForRun()
	var queries []core.MultiQuery
	for _, src := range Q7.Paths {
		queries = append(queries, core.MultiQuery{
			Path:     xpath.MustParse(dict, src).Simplify().Steps,
			Contexts: []storage.NodeID{st.Root()},
		})
	}
	mp := core.BuildMultiPlan(st, queries, core.PlanOptions{})
	count = 0
	for _, c := range mp.Counts() {
		count += c
	}
	led = st.Ledger()
	rows = append(rows, AblationRow{
		Label: "1 shared XSchedule",
		Count: count, Total: led.Total(), CPU: led.CPU, Clusters: led.ClustersVisited,
	})
	return rows
}

// AblationDiskPolicy sweeps the device's queue scheduling policy for an
// XSchedule plan, isolating how much of the gain comes from lower-layer
// reordering (Sec. 3.7).
func (w *Workload) AblationDiskPolicy(sf float64) []AblationRow {
	st, _ := w.Store(sf)
	var rows []AblationRow
	for _, pol := range []vdisk.Policy{vdisk.FIFO, vdisk.Elevator, vdisk.SSTF} {
		st.Disk().SetPolicy(pol)
		m := w.Run(sf, Q6, core.StrategySchedule)
		rows = append(rows, AblationRow{
			Label: fmt.Sprintf("policy=%s", pol),
			Count: m.Count, Total: m.Total, CPU: m.CPU,
		})
	}
	st.Disk().SetPolicy(vdisk.SSTF)
	return rows
}

// AblationFirstStepAll toggles the '//' optimisation (Sec. 5.4.5.4) on an
// XScan plan for a leading-// query.
func (w *Workload) AblationFirstStepAll(sf float64) []AblationRow {
	st, dict := w.Store(sf)
	// Keep the descendant-or-self step: no Simplify.
	steps := xpath.MustParse(dict, "//description").Steps
	var rows []AblationRow
	for _, disable := range []bool{false, true} {
		st.ResetForRun()
		plan := core.BuildPlan(st, steps, []storage.NodeID{st.Root()}, core.StrategyScan,
			core.PlanOptions{NoFirstStepAllOpt: disable})
		count := plan.Count()
		led := st.Ledger()
		label := "with // optimisation"
		if disable {
			label = "without // optimisation"
		}
		rows = append(rows, AblationRow{
			Label: label, Count: count, Total: led.Total(), CPU: led.CPU,
			Extra: fmt.Sprintf("set-inserts=%d", led.SetInserts),
		})
	}
	return rows
}

// AblationUpdates measures how incremental updates widen the plan gap:
// Q6' under every strategy on the freshly loaded document, then again
// after a batch of item insertions whose overflow clusters land at the
// end of the volume (the fragmentation story of the paper's
// introduction, now produced by the engine's own update path).
func (w *Workload) AblationUpdates(sf float64, inserts int) []AblationRow {
	st, dict := w.Store(sf)
	steps := xpath.MustParse(dict, Q6.Paths[0]).Simplify().Steps

	measure := func(label string) []AblationRow {
		var rows []AblationRow
		for _, strat := range []core.Strategy{core.StrategySimple, core.StrategySchedule, core.StrategyScan} {
			st.ResetForRun()
			plan := core.BuildPlan(st, steps, []storage.NodeID{st.Root()}, strat, core.PlanOptions{})
			count := plan.Count()
			led := st.Ledger()
			rows = append(rows, AblationRow{
				Label: fmt.Sprintf("%s/%s", label, strat),
				Count: count, Total: led.Total(), CPU: led.CPU,
			})
		}
		return rows
	}

	rows := measure("fresh")

	// Insert fragments under the first africa region.
	st.ResetForRun()
	africa := core.BuildPlan(st,
		xpath.MustParse(dict, "/site/regions/africa").Simplify().Steps,
		[]storage.NodeID{st.Root()}, core.StrategySimple, core.PlanOptions{}).Run()
	if len(africa) == 0 {
		panic("bench: no africa region")
	}
	for i := 0; i < inserts; i++ {
		b := xmltree.NewBuilder(dict)
		b.Begin("item").Attr("id", fmt.Sprintf("upd%d", i)).
			Leaf("location", "here").
			Leaf("quantity", "1").
			Leaf("name", "updated item").
			Begin("description").Begin("text").Text("inserted after load").End().End().
			End()
		frag := b.Doc().Children[0]
		if _, err := st.InsertSubtree(africa[0].Node, storage.InvalidNodeID, frag); err != nil {
			panic(fmt.Sprintf("bench: insert %d: %v", i, err))
		}
	}
	return append(rows, measure(fmt.Sprintf("after %d inserts", inserts))...)
}

// AblationBufferSize sweeps the buffer-pool capacity for a *session* of
// queries: Q7's three paths run back to back without flushing, so a pool
// that holds the working set serves the later paths from memory. A single
// cold path is almost insensitive to pool size (each cluster is visited
// once); cross-query reuse is where buffer memory pays, which is why the
// paper fixes a substantial 1000-page pool.
func (w *Workload) AblationBufferSize(sf float64, sizes []int) []AblationRow {
	st, dict := w.Store(sf)
	defer st.SetBufferCapacity(w.cfg.BufferPages)

	var rows []AblationRow
	for _, size := range sizes {
		for _, strat := range []core.Strategy{core.StrategySimple, core.StrategySchedule, core.StrategyScan} {
			st.SetBufferCapacity(size)
			st.ResetForRun()
			count := 0
			for _, src := range Q7.Paths {
				steps := xpath.MustParse(dict, src).Simplify().Steps
				plan := core.BuildPlan(st, steps, []storage.NodeID{st.Root()}, strat, core.PlanOptions{})
				count += plan.Count()
			}
			led := st.Ledger()
			rows = append(rows, AblationRow{
				Label: fmt.Sprintf("buffer=%d/%s", size, strat),
				Count: count, Total: led.Total(), CPU: led.CPU,
				Extra: fmt.Sprintf("hits=%d misses=%d", led.BufferHits, led.BufferMisses),
			})
		}
	}
	return rows
}
