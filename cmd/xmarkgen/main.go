// Command xmarkgen emits an XMark-shaped benchmark document as XML — the
// repository's stand-in for the original xmlgen tool.
//
// Usage:
//
//	xmarkgen -sf 1 -seed 42 -scale 0.1 [-indent] [-o file.xml]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"pathdb/internal/xmark"
	"pathdb/internal/xmltree"
	"pathdb/internal/xmlwrite"
)

func main() {
	sf := flag.Float64("sf", 1, "XMark scale factor")
	seed := flag.Uint64("seed", 42, "generator seed")
	scale := flag.Float64("scale", 0.1, "entity scale (1.0 = official XMark populations)")
	indent := flag.Bool("indent", false, "pretty-print the output")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	dict := xmltree.NewDictionary()
	doc := xmark.Generate(dict, xmark.Config{ScaleFactor: *sf, Seed: *seed, EntityScale: *scale})

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xmarkgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	opts := xmlwrite.Options{Declaration: true}
	if *indent {
		opts.Indent = "  "
	}
	if err := xmlwrite.Write(bw, dict, doc, opts); err != nil {
		fmt.Fprintln(os.Stderr, "xmarkgen:", err)
		os.Exit(1)
	}
	if err := bw.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "xmarkgen:", err)
		os.Exit(1)
	}
}
