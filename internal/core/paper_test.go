package core

import (
	"sort"
	"strings"
	"testing"

	"pathdb/internal/stats"
	"pathdb/internal/storage"
	"pathdb/internal/vdisk"
	"pathdb/internal/xmltree"
	"pathdb/internal/xpath"
)

// paperTree reconstructs the running example of the paper (Fig. 2/3/5):
// four clusters a, b, c, d laid out physically in that order, the context
// node d1 in cluster d, and the query /A//B whose results are a3 and c4.
//
//	R  (d1, cluster d)
//	├── A (a2, cluster a)  — via border pair d2/a1
//	│   └── B (a3, cluster a)
//	├── C (d4, cluster d)
//	│   └── X (b2, cluster b) — via border pair d5/b1
//	└── A (c2, cluster c)  — via border pair d3/c1
//	    └── B (c4, cluster c)
//
// Physical pages: a=1, b=2, c=3, d=4 (the scan order of Fig. 8).
func paperTree(t testing.TB) (*xmltree.Dictionary, *storage.Store, []xpath.Step) {
	t.Helper()
	dict := xmltree.NewDictionary()
	A, B, C, R, X := dict.Intern("A"), dict.Intern("B"), dict.Intern("C"), dict.Intern("R"), dict.Intern("X")
	_ = B

	doc := xmltree.NewDocument()
	d1 := xmltree.NewElement(R)
	doc.AppendChild(d1)
	a2 := xmltree.NewElement(A)
	d1.AppendChild(a2)
	a3 := xmltree.NewElement(dict.Intern("B"))
	a2.AppendChild(a3)
	d4 := xmltree.NewElement(C)
	d1.AppendChild(d4)
	b2 := xmltree.NewElement(X)
	d4.AppendChild(b2)
	c2 := xmltree.NewElement(A)
	d1.AppendChild(c2)
	c4 := xmltree.NewElement(dict.Intern("B"))
	c2.AppendChild(c4)

	assign := func(n *xmltree.Node) int {
		switch n {
		case a2, a3:
			return 0 // cluster a -> page 1
		case b2:
			return 1 // cluster b -> page 2
		case c2, c4:
			return 2 // cluster c -> page 3
		default:
			return 3 // cluster d -> page 4 (root R and C)
		}
	}
	disk := vdisk.New(vdisk.DefaultCostModel(), stats.NewLedger(), 512)
	st, err := storage.ImportManual(disk, dict, doc, assign, storage.ImportOptions{PageSize: 512})
	if err != nil {
		t.Fatalf("ImportManual: %v", err)
	}

	// /A//B with the paper's two-step reading: child::A / descendant::B.
	path := []xpath.Step{
		{Axis: xpath.Child, Test: xpath.NameTest(A)},
		{Axis: xpath.Descendant, Test: xpath.NameTest(dict.Intern("B"))},
	}
	return dict, st, path
}

// paperContext resolves the NodeID of d1, the context node of the paper's
// examples (the R element under the document node).
func paperContext(t testing.TB, st *storage.Store) storage.NodeID {
	t.Helper()
	rs := BuildPlan(st, []xpath.Step{{Axis: xpath.Child, Test: xpath.Wildcard()}},
		[]storage.NodeID{st.Root()}, StrategySimple, PlanOptions{}).Run()
	if len(rs) != 1 {
		t.Fatalf("expected one root element, got %d", len(rs))
	}
	return rs[0].Node
}

func resultTags(t *testing.T, dict *xmltree.Dictionary, st *storage.Store, rs []Result) []string {
	t.Helper()
	var tags []string
	for _, r := range rs {
		tags = append(tags, dict.Name(st.Swizzle(r.Node).Tag())+"@"+r.Node.String())
	}
	sort.Strings(tags)
	return tags
}

// TestPaperExample6 reproduces Example 6: the XSchedule plan finds a3 and
// c4 while never visiting cluster b, because d5 is never produced as an
// XStep result (d4 fails the node test A).
func TestPaperExample6(t *testing.T) {
	_, st, path := paperTree(t)
	const pageB = 2

	d1 := paperContext(t, st)
	st.ResetForRun()
	plan := BuildPlan(st, path, []storage.NodeID{d1}, StrategySchedule, PlanOptions{})
	rs := plan.Run()

	if len(rs) != 2 {
		t.Fatalf("results = %d, want 2", len(rs))
	}
	var tags []string
	for _, r := range rs {
		tags = append(tags, st.Dict().Name(st.Swizzle(r.Node).Tag()))
	}
	sort.Strings(tags)
	if strings.Join(tags, ",") != "B,B" {
		t.Fatalf("result tags = %v", tags)
	}
	if st.Loaded(pageB) {
		t.Fatal("cluster b was visited despite failing node test")
	}
	led := st.Ledger()
	// Clusters visited: d (context), a, c — not b.
	if led.ClustersVisited != 3 {
		t.Fatalf("clusters visited = %d, want 3", led.ClustersVisited)
	}
	// Both continuation loads (a and c) went through the async subsystem.
	if led.AsyncSubmitted < 2 {
		t.Fatalf("async submitted = %d, want >= 2", led.AsyncSubmitted)
	}
}

// TestPaperExample7 reproduces Example 7: the XScan plan reads the four
// clusters sequentially (a, b, c, d), creates speculative left-incomplete
// instances in clusters a and c that merge when the scan reaches d, and
// returns the same two results. Every cluster is visited exactly once.
func TestPaperExample7(t *testing.T) {
	_, st, path := paperTree(t)

	d1 := paperContext(t, st)
	st.ResetForRun()
	plan := BuildPlan(st, path, []storage.NodeID{d1}, StrategyScan, PlanOptions{})
	rs := plan.Run()

	if len(rs) != 2 {
		t.Fatalf("results = %d, want 2", len(rs))
	}
	led := st.Ledger()
	if led.ClustersVisited != 4 {
		t.Fatalf("clusters visited = %d, want 4 (one sequential pass)", led.ClustersVisited)
	}
	if led.PageReads != 4 {
		t.Fatalf("page reads = %d, want 4", led.PageReads)
	}
	// All but the first read continue the sequential pattern.
	if led.SeqPageReads != 3 {
		t.Fatalf("sequential reads = %d, want 3", led.SeqPageReads)
	}
	if led.SpecInstances == 0 {
		t.Fatal("no speculative instances were generated")
	}
	// No asynchronous machinery is involved in a scan plan.
	if led.AsyncSubmitted != 0 {
		t.Fatalf("async submitted = %d, want 0", led.AsyncSubmitted)
	}
}

// TestPaperBothPlansAgree ties the two examples together: identical result
// sets for all three strategies on the paper's tree.
func TestPaperBothPlansAgree(t *testing.T) {
	dict, st, path := paperTree(t)
	d1 := paperContext(t, st)
	var sets []string
	for _, strat := range allStrategies {
		st.ResetForRun()
		plan := BuildPlan(st, path, []storage.NodeID{d1}, strat, PlanOptions{})
		sets = append(sets, strings.Join(resultTags(t, dict, st, plan.Run()), ";"))
	}
	if sets[0] != sets[1] || sets[1] != sets[2] {
		t.Fatalf("strategies disagree: %v", sets)
	}
}

// TestPaperSimpleVisitsMorePages documents the cost asymmetry of Example
// 1/6: the Simple plan performs its inter-cluster traversals synchronously
// in encounter order, while XSchedule batches them; both must touch the
// same 3 clusters here, but only XSchedule overlaps the loads.
func TestPaperSimpleCostShape(t *testing.T) {
	_, st, path := paperTree(t)

	d1 := paperContext(t, st)
	st.ResetForRun()
	BuildPlan(st, path, []storage.NodeID{d1}, StrategySimple, PlanOptions{}).Run()
	simple := st.Ledger().Snapshot()

	st.ResetForRun()
	BuildPlan(st, path, []storage.NodeID{d1}, StrategySchedule, PlanOptions{}).Run()
	sched := st.Ledger().Snapshot()

	if simple.AsyncSubmitted != 0 {
		t.Fatal("simple plan used async I/O")
	}
	if sched.AsyncSubmitted == 0 {
		t.Fatal("schedule plan did not use async I/O")
	}
	if simple.PageReads != sched.PageReads {
		t.Fatalf("page reads differ: simple=%d sched=%d", simple.PageReads, sched.PageReads)
	}
}
