// Command apigate snapshots the exported API surface of the root pathdb
// package and compares it against the committed baseline (API_pathdb.txt),
// failing (exit 1) on any difference — the CI gate behind `make api-check`
// that catches unintended public-surface breaks before they ship.
//
// It is a self-contained, stdlib-only stand-in for golang.org/x/exp's
// apidiff (this repository builds with no module downloads): the surface
// is rendered as one normalized line per exported declaration — funcs and
// methods by signature, types by kind with their exported fields or
// interface methods, consts and vars by name and type — and sorted, so
// the comparison is a plain line diff and the baseline file reviews like
// documentation.
//
// Usage:
//
//	apigate              # compare current surface against API_pathdb.txt
//	apigate -update      # rewrite the baseline after an intended change
//
// An intended API change is landed by committing the regenerated baseline
// alongside the code, which makes the surface change visible in review.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"sort"
	"strings"
)

func main() {
	dir := flag.String("dir", ".", "package directory to snapshot")
	baseline := flag.String("baseline", "API_pathdb.txt", "committed API baseline file")
	update := flag.Bool("update", false, "rewrite the baseline instead of comparing")
	flag.Parse()

	surface, err := snapshot(*dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "apigate: %v\n", err)
		os.Exit(2)
	}
	current := strings.Join(surface, "\n") + "\n"

	if *update {
		if err := os.WriteFile(*baseline, []byte(current), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "apigate: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("apigate: wrote %s (%d declarations)\n", *baseline, len(surface))
		return
	}

	want, err := os.ReadFile(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "apigate: no baseline: %v (run apigate -update to create it)\n", err)
		os.Exit(2)
	}
	if string(want) == current {
		fmt.Printf("apigate: ok (%d declarations)\n", len(surface))
		return
	}
	fmt.Fprintln(os.Stderr, "apigate: FAIL exported API surface changed:")
	diff(strings.Split(strings.TrimRight(string(want), "\n"), "\n"), surface)
	fmt.Fprintln(os.Stderr, "apigate: if intended, regenerate with: go run ./cmd/apigate -update")
	os.Exit(1)
}

// diff prints removed (-) and added (+) lines between two sorted surfaces.
func diff(old, new []string) {
	in := func(set []string, s string) bool {
		i := sort.SearchStrings(set, s)
		return i < len(set) && set[i] == s
	}
	for _, l := range old {
		if !in(new, l) {
			fmt.Fprintln(os.Stderr, "  - "+l)
		}
	}
	for _, l := range new {
		if !in(old, l) {
			fmt.Fprintln(os.Stderr, "  + "+l)
		}
	}
}

// snapshot renders the exported surface of the package in dir as sorted,
// normalized declaration lines. Test files are skipped.
func snapshot(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		return nil, err
	}

	var lines []string
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				lines = append(lines, declLines(fset, decl)...)
			}
		}
	}
	sort.Strings(lines)
	return lines, nil
}

// declLines renders one top-level declaration's exported surface.
func declLines(fset *token.FileSet, decl ast.Decl) []string {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() {
			return nil
		}
		// Methods on unexported receivers are still reachable when the
		// unexported type is embedded in an exported one (the volumeAPI
		// pattern), so every exported method is part of the surface.
		recv := ""
		if d.Recv != nil && len(d.Recv.List) > 0 {
			recv = "(" + render(fset, d.Recv.List[0].Type) + ") "
		}
		return []string{"func " + recv + d.Name.Name + strings.TrimPrefix(render(fset, d.Type), "func")}
	case *ast.GenDecl:
		var out []string
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				out = append(out, typeLines(fset, s)...)
			case *ast.ValueSpec:
				kind := "const"
				if d.Tok == token.VAR {
					kind = "var"
				}
				typ := ""
				if s.Type != nil {
					typ = " " + render(fset, s.Type)
				}
				for _, name := range s.Names {
					if name.IsExported() {
						out = append(out, kind+" "+name.Name+typ)
					}
				}
			}
		}
		return out
	}
	return nil
}

// typeLines renders an exported type: one line for the type itself plus
// one per exported struct field or interface method, so adding, removing
// or retyping a member shows as a one-line diff.
func typeLines(fset *token.FileSet, s *ast.TypeSpec) []string {
	if !s.Name.IsExported() {
		return nil
	}
	name := s.Name.Name
	switch t := s.Type.(type) {
	case *ast.StructType:
		out := []string{"type " + name + " struct"}
		for _, f := range t.Fields.List {
			typ := render(fset, f.Type)
			if len(f.Names) == 0 {
				// Embedded: exported when the terminal name is; unexported
				// embeds (volumeAPI) contribute methods, not a field line.
				if base := typ[strings.LastIndexByte(typ, '.')+1:]; ast.IsExported(strings.TrimLeft(base, "*")) {
					out = append(out, "type "+name+" struct, embed "+typ)
				}
				continue
			}
			for _, fn := range f.Names {
				if fn.IsExported() {
					out = append(out, "type "+name+" struct, field "+fn.Name+" "+typ)
				}
			}
		}
		return out
	case *ast.InterfaceType:
		out := []string{"type " + name + " interface"}
		for _, m := range t.Methods.List {
			if len(m.Names) == 0 {
				out = append(out, "type "+name+" interface, embed "+render(fset, m.Type))
				continue
			}
			for _, mn := range m.Names {
				if mn.IsExported() {
					out = append(out, "type "+name+" interface, method "+mn.Name+strings.TrimPrefix(render(fset, m.Type), "func"))
				}
			}
		}
		return out
	default:
		return []string{"type " + name + " " + render(fset, s.Type)}
	}
}

// render prints one AST node on a single normalized line.
func render(fset *token.FileSet, n ast.Node) string {
	var buf bytes.Buffer
	printer.Fprint(&buf, fset, n)
	return strings.Join(strings.Fields(buf.String()), " ")
}
