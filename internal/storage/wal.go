package storage

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"

	"pathdb/internal/vdisk"
)

// Write-ahead logging for the update path — requirement 2 of the paper's
// introduction asks storage formats to "support synchronization and
// recovery". Updates touch several pages (the target page, overflow
// pages, companion pages of moved proxies, the meta page); without
// logging, a crash between those writes leaves dangling proxy pairs.
//
// The protocol is physical redo with a single atomic commit point:
//
//  1. write the after-image of every dirty page to freshly allocated log
//     pages at the end of the volume;
//  2. write one log-header page describing the transaction (targets,
//     checksums);
//  3. write the meta page pointing at the header — the commit point
//     (single-page writes are atomic);
//  4. apply the after-images to their target pages;
//  5. write the meta page again with the log pointer cleared.
//
// Recovery (run by Open) finds a non-zero log pointer, verifies the
// header's checksums, replays the after-images and clears the pointer —
// idempotent, so repeated crashes during recovery are safe. Log pages are
// not recycled (the volume is append-only); a production system would
// reuse them.
//
// Synchronization proper is out of scope by design: the evaluation engine
// is deliberately single-threaded around a virtual clock.

const walMagic = "PATHWAL1"

// walEntry describes one logged page.
type walEntry struct {
	target   vdisk.PageID
	logPage  vdisk.PageID
	checksum uint64
}

// walHeaderCapacity returns how many entries fit one header page (the
// usable region; the checksum trailer takes the rest).
func walHeaderCapacity(pageSize int) int {
	return (usable(pageSize) - 8 - 4) / 16
}

func encodeWalHeader(pageSize int, entries []walEntry) []byte {
	buf := make([]byte, 8+4+16*len(entries))
	copy(buf, walMagic)
	binary.LittleEndian.PutUint32(buf[8:], uint32(len(entries)))
	off := 12
	for _, e := range entries {
		binary.LittleEndian.PutUint32(buf[off:], uint32(e.target))
		binary.LittleEndian.PutUint32(buf[off+4:], uint32(e.logPage))
		binary.LittleEndian.PutUint64(buf[off+8:], e.checksum)
		off += 16
	}
	return buf
}

func decodeWalHeader(raw []byte) ([]walEntry, bool) {
	if len(raw) < 12 || string(raw[:8]) != walMagic {
		return nil, false
	}
	n := binary.LittleEndian.Uint32(raw[8:])
	if 12+16*int(n) > len(raw) {
		return nil, false
	}
	out := make([]walEntry, n)
	off := 12
	for i := range out {
		out[i] = walEntry{
			target:   vdisk.PageID(binary.LittleEndian.Uint32(raw[off:])),
			logPage:  vdisk.PageID(binary.LittleEndian.Uint32(raw[off+4:])),
			checksum: binary.LittleEndian.Uint64(raw[off+8:]),
		}
		off += 16
	}
	return out, true
}

func pageChecksum(data []byte) uint64 {
	h := fnv.New64a()
	h.Write(data)
	return h.Sum64()
}

// commitWAL atomically applies the given after-images (page → content)
// together with the new meta information.
func (s *Store) commitWAL(images map[vdisk.PageID][]byte, meta metaInfo) error {
	if len(images) == 0 {
		return nil
	}
	ps := s.disk.PageSize()
	if len(images) > walHeaderCapacity(ps) {
		return fmt.Errorf("storage: transaction touches %d pages, exceeding one WAL header", len(images))
	}

	// Deterministic order for reproducible virtual timing.
	targets := make([]vdisk.PageID, 0, len(images))
	for p := range images {
		targets = append(targets, p)
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i] < targets[j] })

	// 1. After-images to fresh log pages. Images are finalized (padded,
	// checksum trailer stamped) once; the log page, the WAL entry checksum
	// and the later apply all use the identical full-page bytes, so a
	// recovered page carries a valid trailer.
	final := make(map[vdisk.PageID][]byte, len(targets))
	entries := make([]walEntry, len(targets))
	for i, t := range targets {
		fin := finalizePage(images[t], ps)
		final[t] = fin
		lp := s.disk.Alloc()
		s.disk.Write(lp, fin)
		entries[i] = walEntry{target: t, logPage: lp, checksum: pageChecksum(fin)}
	}
	// 2. The header.
	hdr := s.disk.Alloc()
	writePage(s.disk, hdr, encodeWalHeader(ps, entries))
	// 3. Commit point: meta references the header.
	meta.walPage = hdr
	writeMeta(s.disk, 0, meta)
	// 4. Apply.
	for _, t := range targets {
		s.disk.Write(t, final[t])
	}
	// 5. Clear the log pointer.
	meta.walPage = 0
	writeMeta(s.disk, 0, meta)
	return nil
}

// recover replays a committed-but-unapplied transaction, if any. Called by
// Open before the store is used. Idempotent.
func recoverWAL(disk *vdisk.Disk, m *metaInfo) error {
	if m.walPage == 0 {
		return nil
	}
	buf := make([]byte, disk.PageSize())
	if err := readPageVerified(disk, m.walPage, buf); err != nil {
		return fmt.Errorf("storage: WAL header at page %d unreadable: %w", m.walPage, err)
	}
	entries, ok := decodeWalHeader(buf)
	if !ok {
		return fmt.Errorf("storage: corrupt WAL header at page %d", m.walPage)
	}
	img := make([]byte, disk.PageSize())
	for _, e := range entries {
		if err := readPageVerified(disk, e.logPage, img); err != nil {
			return fmt.Errorf("storage: WAL image for page %d unreadable: %w", e.target, err)
		}
		if pageChecksum(img) != e.checksum {
			return fmt.Errorf("storage: WAL image for page %d fails checksum", e.target)
		}
		disk.Write(e.target, img)
	}
	m.walPage = 0
	writeMeta(disk, 0, *m)
	return nil
}
