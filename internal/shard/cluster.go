package shard

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"pathdb"
	"pathdb/internal/stats"
)

// Policy selects how the scatter-gather coordinator treats shard failures.
type Policy uint8

const (
	// PolicyQuorum tolerates degraded shards: a query succeeds with a
	// partial (typed, non-500) result as long as at least Quorum shards
	// answer. Only storage-level faults (KindIO, KindCorrupt) count as
	// tolerable degradation; overload, timeout and cancellation still fail
	// the whole request so backpressure and deadlines keep their meaning.
	PolicyQuorum Policy = iota
	// PolicyAll demands every shard: the first failure cancels the
	// remaining shard queries and fails the request.
	PolicyAll
)

// ParsePolicy parses "quorum" or "all".
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "", "quorum":
		return PolicyQuorum, nil
	case "all":
		return PolicyAll, nil
	}
	return PolicyQuorum, fmt.Errorf("shard: unknown policy %q (want quorum or all)", s)
}

func (p Policy) String() string {
	if p == PolicyAll {
		return "all"
	}
	return "quorum"
}

// Config tunes a Cluster.
type Config struct {
	// Shards is the volume count (>= 1).
	Shards int
	// Replicas is the ring's virtual-node count per shard
	// (DefaultReplicas when 0).
	Replicas int
	// Policy picks the degraded-shard behaviour (default PolicyQuorum).
	Policy Policy
	// Quorum is the minimum number of successfully answering shards for a
	// partial result under PolicyQuorum (default Shards/2+1).
	Quorum int
	// Engine configures each shard's engine (and the spine volume's).
	Engine pathdb.EngineConfig
	// NoCountCache disables the per-shard epoch-keyed count cache (on by
	// default). Count-only scatters reuse a shard's last count for a path
	// while that shard's publish epoch is unchanged — a commit on one
	// shard invalidates only that shard's entries, which is where a
	// sharded cluster earns read throughput a single volume cannot: under
	// a mixed workload, most shards' cached counts survive every write.
	NoCountCache bool
	// Txn tunes each shard volume's transaction manager. The zero value
	// selects the sharded default, which differs from a single volume's in
	// one deliberate way: the group-commit window is disabled (immediate
	// WAL flush). Each shard serializes commits under its own staging lock
	// and sees only 1/N of the cluster's write traffic, so the chance of a
	// second commit arriving inside the window is N times smaller than on
	// a single volume — while every commit still pays the full window in
	// acknowledgement latency, and the publish-to-acknowledge gap is
	// precisely the interval in which the owner shard's epoch has moved
	// but the commit is not yet journaled for cache revalidation. Set
	// GroupWindow explicitly to restore batching.
	Txn pathdb.TxnOptions
}

func (c Config) withDefaults() Config {
	if c.Shards < 1 {
		c.Shards = 1
	}
	if c.Quorum <= 0 || c.Quorum > c.Shards {
		c.Quorum = c.Shards/2 + 1
	}
	return c
}

// ParentError reports an update whose parent path did not resolve to
// exactly one node cluster-wide — a client error, not a shard fault.
type ParentError struct {
	Path    string
	Matches int
}

func (e *ParentError) Error() string {
	if e.Matches == 0 {
		return fmt.Sprintf("shard: parent path %q matched no node", e.Path)
	}
	return fmt.Sprintf("shard: parent path %q matched %d nodes, want exactly 1", e.Path, e.Matches)
}

// QuorumError reports a scatter that lost too many shards to degradation.
// It unwraps to the first shard failure so the typed error taxonomy
// (pathdb.KindOf) still classifies it.
type QuorumError struct {
	Healthy  int
	Needed   int
	Failures []ShardFailure
}

func (e *QuorumError) Error() string {
	return fmt.Sprintf("shard: quorum lost: %d shards answered, need %d (%d degraded)",
		e.Healthy, e.Needed, len(e.Failures))
}

func (e *QuorumError) Unwrap() error { return e.Failures[0].Err }

// ShardFailure is one shard's failure within a scatter.
type ShardFailure struct {
	Shard int
	Kind  pathdb.ErrorKind
	Err   error
}

// ShardStat is one shard's contribution to a merged query result.
type ShardStat struct {
	Shard    int
	Count    int             // local matches (spine matches included)
	Strategy pathdb.Strategy // strategy the shard's own chooser picked
	Shared   bool
	Cached   bool // count served from the epoch-keyed cache, no execution
	CostV    stats.Ticks
	VirtLat  stats.Ticks // submit-to-done on the shard's virtual clock
	WallExec int64       // nanoseconds
	Failed   bool
	Kind     pathdb.ErrorKind // set when Failed
}

// countCache memoizes one volume's count per path, keyed by the volume's
// publish epoch: any commit on the volume bumps the epoch and silently
// invalidates every entry. Entries are only served while the stored epoch
// matches the volume's current one, so cached counts are always exactly
// what a fresh query would return.
type countCache struct {
	mu   sync.RWMutex
	m    map[string]countEntry
	hits atomic.Int64
}

type countEntry struct {
	epoch uint64
	count int
}

// countCacheLimit bounds distinct paths held per volume; the whole map is
// dropped past it (the workload re-warms in one round).
const countCacheLimit = 4096

func (cc *countCache) get(path string, epoch uint64) (int, bool) {
	cc.mu.RLock()
	e, ok := cc.m[path]
	cc.mu.RUnlock()
	if !ok || e.epoch != epoch {
		return 0, false
	}
	cc.hits.Add(1)
	return e.count, true
}

// getWalk is get with a second chance for stale entries: when the entry's
// epoch lags the volume's, keep may prove the intervening commits left the
// path's count unchanged (a journal walk), in which case the entry is
// carried forward and served. This catches the gap between a commit
// publishing its epoch and the writer journaling it — eager revalidation
// only runs once the commit's WAL flush has been acknowledged.
func (cc *countCache) getWalk(path string, epoch uint64, keep func(entryEpoch uint64, path string) bool) (int, bool) {
	cc.mu.RLock()
	e, ok := cc.m[path]
	cc.mu.RUnlock()
	if !ok {
		return 0, false
	}
	if e.epoch != epoch {
		if e.epoch > epoch || keep == nil || !keep(e.epoch, path) {
			return 0, false
		}
		cc.mu.Lock()
		if cur, ok := cc.m[path]; ok && cur.epoch == e.epoch {
			cur.epoch = epoch
			cc.m[path] = cur
		}
		cc.mu.Unlock()
	}
	cc.hits.Add(1)
	return e.count, true
}

// put stores a count computed while the volume sat at epoch. If a commit
// raced the query, the volume's epoch has already moved on and the stale
// entry simply never matches again.
func (cc *countCache) put(path string, epoch uint64, count int) {
	cc.mu.Lock()
	if cc.m == nil || len(cc.m) >= countCacheLimit {
		cc.m = make(map[string]countEntry)
	}
	cc.m[path] = countEntry{epoch: epoch, count: count}
	cc.mu.Unlock()
}

// revalidateTo carries an entry forward to epoch to when keep can prove,
// starting from the entry's own stored epoch, that every commit between
// them left the path's count unchanged. Each entry is judged against its
// own epoch, so group-committed windows and interleaved inserts revalidate
// entry by entry instead of all-or-nothing per window.
func (cc *countCache) revalidateTo(to uint64, keep func(entryEpoch uint64, path string) bool) {
	cc.mu.Lock()
	for p, e := range cc.m {
		if e.epoch < to && keep(e.epoch, p) {
			e.epoch = to
			cc.m[p] = e
		}
	}
	cc.mu.Unlock()
}

// pathTokensIfSimple returns path's step-name tokens when path is a simple
// downward path — name steps joined by / and //, possibly @-attribute
// steps, nothing else. Predicates, wildcards and functions disqualify it
// (second return false): through those, an insert could change the count
// in ways name disjointness cannot rule out.
func pathTokensIfSimple(path string) (map[string]bool, bool) {
	for i := 0; i < len(path); i++ {
		if c := path[i]; !isNameChar(c) && c != '/' && c != '@' {
			return nil, false
		}
	}
	return nameTokens(path), true
}

// updateIndependent conservatively decides whether inserting fragment can
// change the match count of path (the classic XPath/update independence
// test, reduced to its sound core): only simple downward paths are
// considered, and the inserted fragment must share no name token with the
// path. New nodes can only extend the matches of a path whose final step
// names one of them, and a simple path has no predicates or wildcards
// through which existing matches could be gained or lost, so disjoint
// names mean the count is provably unchanged.
func updateIndependent(path, fragment string) bool {
	ptoks, simple := pathTokensIfSimple(path)
	if !simple {
		return false
	}
	frag := nameTokens(fragment)
	for t := range ptoks {
		if frag[t] {
			return false
		}
	}
	return true
}

func isNameChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
		c == '_' || c == '-' || c == '.' || c == ':'
}

// nameTokens returns the maximal name-character runs of s — for a
// fragment that over-approximates its tag and attribute names (text
// content included, which only errs toward dependence), for a path its
// step names.
func nameTokens(s string) map[string]bool {
	out := make(map[string]bool)
	start := -1
	for i := 0; i <= len(s); i++ {
		if i < len(s) && isNameChar(s[i]) {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 {
			out[s[start:i]] = true
			start = -1
		}
	}
	return out
}

// ShardNode is one merged result node tagged with its source shard.
type ShardNode struct {
	Shard int
	Node  pathdb.Node
}

// Merged is a scatter-gather query result.
type Merged struct {
	// Count is the cluster-wide match count. Spine nodes are replicated on
	// every answering shard, so the merge counts them once:
	// sum(local counts) - (answered-1) * SpineMatches.
	Count int
	// SpineMatches is how many matches fall on the replicated spine
	// (computed on the spine volume; 0 for single-shard clusters).
	SpineMatches int
	// Nodes is the merged node list in global document order, deduplicated
	// against the spine (only set when the caller asked for nodes).
	Nodes []ShardNode
	// PerShard has one entry per shard, including failed ones.
	PerShard []ShardStat
	// Degraded lists shards whose storage faulted; Partial is true when
	// the result excludes at least one of them.
	Degraded []ShardFailure
	Partial  bool
}

// Cluster is the scatter-gather coordinator over one ShardSet: N
// independent volumes, each behind its own engine, plus the spine volume
// used to merge replicated matches exactly once. All methods are safe for
// concurrent use.
type Cluster struct {
	cfg  Config
	ring *Ring
	set  *pathdb.ShardSet

	engines  []*pathdb.Engine
	sessions []*pathdb.Session

	spineEng *pathdb.Engine
	spineSes *pathdb.Session

	// Per-shard count caches plus one for the spine volume; nil slices
	// when Config.NoCountCache is set.
	caches     []*countCache
	spineCache *countCache

	// parentNodes memoizes resolved insert-parent handles per shard
	// (path → pathdb.Node). MVCC keeps a node handle stable across
	// commits until the node is deleted, so inserts only invalidate
	// nothing and deletes clear the whole map; a handle lost to a racing
	// delete surfaces as the same conflict error the uncached path hits.
	parentNodes []sync.Map

	// journals records recent insert commits per shard, keyed by exact
	// publish epoch, so cache revalidation can attribute every epoch a
	// stale entry must cross — including epochs published by concurrent
	// group-committed inserts.
	journals []shardJournal

	writeSeq     atomic.Uint64
	partials     atomic.Int64
	degradedHits []atomic.Int64
}

// shardJournal is a short per-shard log of insert commits, each tagged
// with the exact epoch the transaction published (Engine.UpdateEpoch
// assigns it under the staging lock, so the mapping is unambiguous even
// when group commit interleaves writers). A cache entry stored at epoch E
// may carry forward to epoch E' only when every epoch in (E, E'] appears
// here with a fragment update-independent of the entry's path. Deletes
// never journal, so any delete in the window breaks attribution and the
// entry takes the full invalidation.
type shardJournal struct {
	mu      sync.Mutex
	commits []journalCommit
}

type journalCommit struct {
	epoch uint64
	toks  map[string]bool // inserted fragment's name tokens
}

// journalDepth bounds each shard's commit log; windows reaching further
// back than this simply fail attribution.
const journalDepth = 32

// attributable reports whether every epoch in (from, to] on shard s is a
// journaled insert whose fragment is update-independent of path — the
// proof obligation for carrying a cached count at epoch from forward to
// epoch to. Any unjournaled epoch in the window (a delete, an insert not
// yet acknowledged, or history evicted past journalDepth) fails it.
func (c *Cluster) attributable(s int, from, to uint64, path string) bool {
	if to <= from || to-from > journalDepth {
		return false
	}
	ptoks, simple := pathTokensIfSimple(path)
	if !simple {
		return false
	}
	j := &c.journals[s]
	j.mu.Lock()
	defer j.mu.Unlock()
	for e := from + 1; e <= to; e++ {
		ok := false
		for i := len(j.commits) - 1; i >= 0; i-- {
			if j.commits[i].epoch != e {
				continue
			}
			ok = true
			for t := range ptoks {
				if j.commits[i].toks[t] {
					return false
				}
			}
			break
		}
		if !ok {
			return false
		}
	}
	return true
}

// New builds a Cluster over an already-split ShardSet. ring must cover
// len(set.Shards) shards; pass nil to build one from cfg.
func New(set *pathdb.ShardSet, ring *Ring, cfg Config) (*Cluster, error) {
	cfg.Shards = len(set.Shards)
	cfg = cfg.withDefaults()
	if ring == nil {
		ring = NewRing(cfg.Shards, cfg.Replicas)
	}
	if ring.Shards() != cfg.Shards {
		return nil, fmt.Errorf("shard: ring covers %d shards, set has %d", ring.Shards(), cfg.Shards)
	}
	c := &Cluster{
		cfg:          cfg,
		ring:         ring,
		set:          set,
		degradedHits: make([]atomic.Int64, cfg.Shards),
		parentNodes:  make([]sync.Map, cfg.Shards),
		journals:     make([]shardJournal, cfg.Shards),
	}
	txnOpts := cfg.Txn
	if txnOpts.GroupWindow == 0 {
		txnOpts.GroupWindow = -1 // sharded default: immediate flush (see Config.Txn)
	}
	for _, db := range set.Shards {
		// Best effort: a volume that has already committed keeps the
		// options its first write froze.
		_ = db.SetTxnOptions(txnOpts)
		eng := db.NewEngine(cfg.Engine)
		db.ResetStats()
		c.engines = append(c.engines, eng)
		c.sessions = append(c.sessions, eng.NewSession())
	}
	if !cfg.NoCountCache {
		c.caches = make([]*countCache, cfg.Shards)
		for i := range c.caches {
			c.caches[i] = &countCache{}
		}
		c.spineCache = &countCache{}
	}
	if set.Spine != nil {
		_ = set.Spine.SetTxnOptions(txnOpts)
		// The spine volume is tiny; a narrow engine keeps its bookkeeping
		// cheap while still serving one spine probe per in-flight request.
		c.spineEng = set.Spine.NewEngine(pathdb.EngineConfig{
			MaxInFlight: cfg.Engine.MaxInFlight,
			QueueDepth:  cfg.Engine.QueueDepth,
			Parallel:    2,
		})
		set.Spine.ResetStats()
		c.spineSes = c.spineEng.NewSession()
	}
	return c, nil
}

// NewXMark generates the XMark corpus, splits it across cfg.Shards volumes
// placed by a fresh ring, and starts the cluster.
func NewXMark(x pathdb.XMarkConfig, opts pathdb.Options, cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	ring := NewRing(cfg.Shards, cfg.Replicas)
	set, err := pathdb.GenerateXMarkSharded(x, opts, cfg.Shards, ring.Place)
	if err != nil {
		return nil, err
	}
	return New(set, ring, cfg)
}

// NewXML parses one XML document, splits it, and starts the cluster.
func NewXML(data []byte, opts pathdb.Options, cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	ring := NewRing(cfg.Shards, cfg.Replicas)
	set, err := pathdb.LoadXMLSharded(data, opts, cfg.Shards, ring.Place)
	if err != nil {
		return nil, err
	}
	return New(set, ring, cfg)
}

// Shards returns the shard count.
func (c *Cluster) Shards() int { return len(c.engines) }

// Ring returns the placement ring (shared with the cluster; marking a
// shard degraded there steers PlaceWrite immediately).
func (c *Cluster) Ring() *Ring { return c.ring }

// Set returns the underlying ShardSet.
func (c *Cluster) Set() *pathdb.ShardSet { return c.set }

// Check compiles path against shard 0 (all volumes share one dictionary,
// so compilation is shard-independent) without executing anything. The
// router uses it to turn malformed paths into 400s before scattering.
func (c *Cluster) Check(path string) error {
	_, err := c.set.Shards[0].Query(path)
	return err
}

// CheckFragment validates an XML fragment without committing anything (all
// volumes share one dictionary, so shard 0 speaks for the cluster).
func (c *Cluster) CheckFragment(frag string) error {
	return c.set.Shards[0].CheckFragment(frag)
}

// SetFaults installs a fault schedule on one shard's volume — the seeded
// fault plane driving the degraded-shard story end to end.
func (c *Cluster) SetFaults(s int, f pathdb.FaultConfig) {
	c.set.Shards[s].SetFaults(f)
}

// MarkDegraded marks shard s degraded on the ring (writes route around
// it); reads keep scattering to it and rely on Policy to absorb faults.
func (c *Cluster) MarkDegraded(s int, v bool) { c.ring.SetDegraded(s, v) }

// Partials returns how many queries completed with a partial result.
func (c *Cluster) Partials() int64 { return c.partials.Load() }

// tolerable reports whether a shard failure counts as degradation the
// quorum policy may absorb: only storage faults. Everything else
// (overload, timeout, cancellation, closed) fails the request.
func tolerable(err error) bool {
	switch pathdb.KindOf(err) {
	case pathdb.KindIO, pathdb.KindCorrupt:
		return true
	}
	return false
}

// Query fans path across every shard (and the spine volume), gathers with
// the configured failure policy, and merges counts — and nodes, when
// wantNodes is set — in global document order. The caller's ctx deadline
// and cancellation propagate to every shard query; under PolicyAll the
// first shard failure cancels the rest of the scatter.
func (c *Cluster) Query(ctx context.Context, path string, opts pathdb.QueryOptions, wantNodes bool) (*Merged, error) {
	n := len(c.engines)

	// Count-only scatters consult the epoch-keyed caches first: a shard
	// whose count for this path is still valid at its current publish
	// epoch is not queried at all. Node requests always execute (nodes
	// are not cached), but still refresh the counts on the way out.
	useCache := c.caches != nil && !wantNodes
	hit := make([]bool, n)
	cachedCount := make([]int, n)
	epochs := make([]uint64, n)
	spineHit := false
	spineCachedCount := 0
	var spineEpoch uint64
	if useCache {
		for i := 0; i < n; i++ {
			epochs[i] = c.set.Shards[i].TxnMetrics().Epoch
			cachedCount[i], hit[i] = c.caches[i].getWalk(path, epochs[i],
				func(from uint64, p string) bool { return c.attributable(i, from, epochs[i], p) })
		}
		if c.spineSes != nil {
			spineEpoch = c.set.Spine.TxnMetrics().Epoch
			spineCachedCount, spineHit = c.spineCache.get(path, spineEpoch)
		}
	}

	scatterCtx := ctx
	var cancel context.CancelFunc
	if c.cfg.Policy == PolicyAll {
		scatterCtx, cancel = context.WithCancel(ctx)
		defer cancel()
	}

	type shardOut struct {
		res pathdb.ExecResult
		err error
	}
	outs := make([]shardOut, n)
	var spineRes pathdb.ExecResult
	var spineErr error

	var wg sync.WaitGroup
	if c.spineSes != nil && !spineHit {
		wg.Add(1)
		go func() {
			defer wg.Done()
			spineRes, spineErr = c.spineSes.Do(scatterCtx, path, opts)
		}()
	}
	for i := 0; i < n; i++ {
		if hit[i] {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := c.sessions[i].TryDo(scatterCtx, path, opts)
			outs[i] = shardOut{res, err}
			if err != nil && cancel != nil {
				cancel()
			}
		}(i)
	}
	wg.Wait()

	if useCache {
		for i := 0; i < n; i++ {
			if !hit[i] && outs[i].err == nil {
				c.caches[i].put(path, epochs[i], outs[i].res.Count())
			}
		}
		if c.spineSes != nil && !spineHit && spineErr == nil {
			c.spineCache.put(path, spineEpoch, spineRes.Count())
		}
	}

	// Classify the gather: tolerable storage faults become degradation
	// candidates, anything else is fatal. Cancellation errors induced by
	// our own PolicyAll cancel must not mask the failure that caused them.
	var failures []ShardFailure
	var answered []int
	var fatal error
	for i := 0; i < n; i++ {
		if hit[i] {
			answered = append(answered, i)
			continue
		}
		err := outs[i].err
		if err == nil {
			answered = append(answered, i)
			continue
		}
		if tolerable(err) {
			failures = append(failures, ShardFailure{Shard: i, Kind: pathdb.KindOf(err), Err: err})
			c.degradedHits[i].Add(1)
			continue
		}
		if fatal == nil || (pathdb.KindOf(fatal) == pathdb.KindCanceled && pathdb.KindOf(err) != pathdb.KindCanceled) {
			fatal = err
		}
	}
	if fatal != nil && pathdb.KindOf(fatal) != pathdb.KindCanceled {
		return nil, fatal
	}
	// Under PolicyAll the first shard failure cancelled the scatter; the
	// cancellations it induced must not mask it.
	if len(failures) > 0 && c.cfg.Policy == PolicyAll {
		return nil, failures[0].Err
	}
	if fatal != nil {
		return nil, fatal
	}
	if len(answered) < c.cfg.Quorum {
		return nil, &QuorumError{Healthy: len(answered), Needed: c.cfg.Quorum, Failures: failures}
	}

	// Spine arithmetic. The spine query runs on a fault-free volume; an
	// error here is a deadline or cancellation shared with the scatter.
	spineCount := 0
	var spineOrds map[string]bool
	if c.spineSes != nil {
		if spineHit {
			spineCount = spineCachedCount
		} else {
			if spineErr != nil {
				return nil, spineErr
			}
			spineCount = spineRes.Count()
		}
		if wantNodes && spineCount > 0 {
			spineOrds = make(map[string]bool, spineCount)
			for _, sn := range spineRes.Nodes {
				spineOrds[sn.OrdPath()] = true
			}
		}
	}

	m := &Merged{
		SpineMatches: spineCount,
		Degraded:     failures,
		Partial:      len(failures) > 0,
		PerShard:     make([]ShardStat, 0, n),
	}
	if m.Partial {
		c.partials.Add(1)
	}
	localCount := func(i int) int {
		if hit[i] {
			return cachedCount[i]
		}
		return outs[i].res.Count()
	}
	for i := 0; i < n; i++ {
		if hit[i] {
			m.PerShard = append(m.PerShard, ShardStat{
				Shard:  i,
				Count:  cachedCount[i],
				Cached: true,
			})
			continue
		}
		if outs[i].err != nil {
			m.PerShard = append(m.PerShard, ShardStat{
				Shard:  i,
				Failed: true,
				Kind:   pathdb.KindOf(outs[i].err),
			})
			continue
		}
		r := &outs[i].res
		m.PerShard = append(m.PerShard, ShardStat{
			Shard:    i,
			Count:    r.Count(),
			Strategy: r.Strategy,
			Shared:   r.Shared,
			CostV:    r.CostV,
			VirtLat:  r.VirtualLatency,
			WallExec: r.WallExec.Nanoseconds(),
		})
	}

	// Merge counts: every answering shard reports the same spine matches
	// (replicated, identical order keys), so count them exactly once.
	for idx, i := range answered {
		m.Count += localCount(i)
		if idx > 0 {
			m.Count -= spineCount
		}
	}

	if wantNodes {
		for idx, i := range answered {
			for _, nd := range outs[i].res.Nodes {
				if idx > 0 && spineOrds[nd.OrdPath()] {
					continue // spine replica already contributed by the first answering shard
				}
				m.Nodes = append(m.Nodes, ShardNode{Shard: i, Node: nd})
			}
		}
		sort.SliceStable(m.Nodes, func(a, b int) bool {
			if d := pathdb.CompareDocOrder(m.Nodes[a].Node, m.Nodes[b].Node); d != 0 {
				return d < 0
			}
			return m.Nodes[a].Shard < m.Nodes[b].Shard
		})
	}
	return m, nil
}

// InsertResult reports a routed insert.
type InsertResult struct {
	Shard int         // shard that now owns the inserted subtree
	Node  pathdb.Node // root of the inserted fragment
	Epoch uint64      // owning shard's publish epoch after commit
}

// Insert routes one insert to its owning shard. The parent path must
// resolve to exactly one node cluster-wide. A parent on the replicated
// spine exists on every shard, so the ring picks a healthy home for the
// new subtree (consistent hashing over parent+sequence keeps placement
// balanced and away from degraded shards); an entity parent lives on
// exactly one shard, which must take the write.
func (c *Cluster) Insert(ctx context.Context, parent, fragment string) (InsertResult, error) {
	m, err := c.Query(ctx, parent, pathdb.QueryOptions{}, false)
	if err != nil {
		return InsertResult{}, err
	}
	if m.Count != 1 {
		return InsertResult{}, &ParentError{Path: parent, Matches: m.Count}
	}

	owner := -1
	if m.SpineMatches == 1 || len(c.engines) == 1 {
		key := fmt.Sprintf("%s@%d", parent, c.writeSeq.Add(1))
		owner = c.ring.PlaceWrite(key)
	} else {
		for _, ps := range m.PerShard {
			if !ps.Failed && ps.Count == 1 {
				owner = ps.Shard
				break
			}
		}
		if owner == -1 {
			// The only copy of the parent sits on a shard that faulted.
			return InsertResult{}, m.Degraded[0].Err
		}
	}

	var parentNode pathdb.Node
	if v, ok := c.parentNodes[owner].Load(parent); ok {
		parentNode = v.(pathdb.Node)
	} else {
		res, err := c.sessions[owner].Do(ctx, parent, pathdb.QueryOptions{})
		if err != nil {
			return InsertResult{}, err
		}
		if res.Count() != 1 {
			return InsertResult{}, &ParentError{Path: parent, Matches: res.Count()}
		}
		parentNode = res.Nodes[0]
		c.parentNodes[owner].Store(parent, parentNode)
	}
	var inserted pathdb.Node
	epoch, err := c.engines[owner].UpdateEpoch(func(tx *pathdb.Tx) error {
		nd, err := tx.InsertXML(parentNode, fragment)
		if err != nil {
			return err
		}
		inserted = nd
		return nil
	})
	if err != nil {
		c.parentNodes[owner].Delete(parent)
		return InsertResult{}, err
	}
	// Carry the owner's cached counts forward past this commit's epoch for
	// paths the intervening commits provably cannot affect. Each stale
	// entry walks the journal from its own epoch: every epoch it crosses
	// must be a journaled insert whose fragment is update-independent of
	// the entry's path, or the entry takes the full invalidation.
	if c.caches != nil {
		j := &c.journals[owner]
		j.mu.Lock()
		j.commits = append(j.commits, journalCommit{epoch: epoch, toks: nameTokens(fragment)})
		if len(j.commits) > journalDepth {
			j.commits = j.commits[len(j.commits)-journalDepth:]
		}
		j.mu.Unlock()
		c.caches[owner].revalidateTo(epoch, func(entryEpoch uint64, p string) bool {
			return c.attributable(owner, entryEpoch, epoch, p)
		})
	}
	return InsertResult{
		Shard: owner,
		Node:  inserted,
		Epoch: epoch,
	}, nil
}

// DeleteResult reports a fanned-out delete.
type DeleteResult struct {
	// Deleted is the cluster-wide number of subtree roots removed
	// (replicated spine matches counted once).
	Deleted int
	// PerShard is how many subtree roots each shard removed locally.
	PerShard []int
}

// Delete removes every match of path on every shard. Spine matches are
// replicated, so the delete must land on all shards (and on the spine
// volume, kept in lockstep for future merges); a shard failure therefore
// aborts the whole delete rather than leave replicas diverged — writes
// choose consistency where reads choose availability.
func (c *Cluster) Delete(ctx context.Context, path string) (DeleteResult, error) {
	m, err := c.Query(ctx, path, pathdb.QueryOptions{}, false)
	if err != nil {
		return DeleteResult{}, err
	}
	if m.Partial {
		return DeleteResult{}, m.Degraded[0].Err
	}
	out := DeleteResult{PerShard: make([]int, len(c.engines))}
	if m.Count == 0 {
		return out, nil
	}

	var wg sync.WaitGroup
	errs := make([]error, len(c.engines)+1)
	deleteOn := func(ses *pathdb.Session, eng *pathdb.Engine) (int, error) {
		res, err := ses.Do(ctx, path, pathdb.QueryOptions{})
		if err != nil {
			return 0, err
		}
		if res.Count() == 0 {
			return 0, nil
		}
		err = eng.Update(func(tx *pathdb.Tx) error {
			for _, nd := range res.Nodes {
				if err := tx.Delete(nd); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return 0, err
		}
		return res.Count(), nil
	}
	for i := range c.engines {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out.PerShard[i], errs[i] = deleteOn(c.sessions[i], c.engines[i])
		}(i)
	}
	if c.spineSes != nil && m.SpineMatches > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, errs[len(c.engines)] = deleteOn(c.spineSes, c.spineEng)
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return DeleteResult{}, err
		}
	}
	// Any deleted subtree may have been a memoized insert parent.
	for i := range c.parentNodes {
		c.parentNodes[i].Range(func(k, _ any) bool {
			c.parentNodes[i].Delete(k)
			return true
		})
	}
	out.Deleted = m.Count
	return out, nil
}

// ShardMetrics is one shard's full observability snapshot.
type ShardMetrics struct {
	Shard        int
	Pages        int
	Engine       pathdb.EngineMetrics
	Txn          pathdb.TxnMetrics
	Ledger       stats.Ledger
	DegradedHits int64 // queries this shard failed with a tolerable storage fault
	CacheHits    int64 // counts served from the epoch-keyed cache without execution
}

// Metrics snapshots every shard.
func (c *Cluster) Metrics() []ShardMetrics {
	out := make([]ShardMetrics, len(c.engines))
	for i, eng := range c.engines {
		out[i] = ShardMetrics{
			Shard:        i,
			Pages:        c.set.Shards[i].Pages(),
			Engine:       eng.Metrics(),
			Txn:          eng.TxnMetrics(),
			Ledger:       eng.CostLedger(),
			DegradedHits: c.degradedHits[i].Load(),
		}
		if c.caches != nil {
			out[i].CacheHits = c.caches[i].hits.Load()
		}
	}
	return out
}

// Shutdown drains every engine gracefully (spine included); ctx bounds the
// whole drain.
func (c *Cluster) Shutdown(ctx context.Context) error {
	engines := append([]*pathdb.Engine{}, c.engines...)
	if c.spineEng != nil {
		engines = append(engines, c.spineEng)
	}
	errs := make([]error, len(engines))
	var wg sync.WaitGroup
	for i, eng := range engines {
		wg.Add(1)
		go func(i int, eng *pathdb.Engine) {
			defer wg.Done()
			errs[i] = eng.Shutdown(ctx)
		}(i, eng)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Close hard-stops every engine.
func (c *Cluster) Close() {
	for _, eng := range c.engines {
		eng.Close()
	}
	if c.spineEng != nil {
		c.spineEng.Close()
	}
}
