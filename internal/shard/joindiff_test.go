package shard

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"pathdb"
)

// joinDiffPaths: the branching subset of the differential sweep — every
// query carries at least one structural predicate, so the nested and join
// evaluators both do real work on every shard before the merge.
var joinDiffPaths = []string{
	"/site//text[keyword]",
	"/site//listitem[.//keyword]",
	"/site/regions//item[mailbox/mail]",
	"/site//open_auction[bidder/increase]",
	`/site//open_auction[privacy="Yes"]`,
	"/site//person[profile[interest]]",
	"/site//text[keyword|bold]",
	"/site//listitem[parlist/listitem|.//keyword]", // mixed-axis union
	"/site//item[payment][quantity]",
	"/site//keyword[ancestor::listitem]", // fallback branch inside XJoin
}

// mergedFingerprint renders a scatter-gather node merge byte-exactly:
// contributing shard, global order key, and name per line.
func mergedFingerprint(m *Merged) string {
	var b strings.Builder
	for _, sn := range m.Nodes {
		fmt.Fprintf(&b, "%d|%s|%s\n", sn.Shard, sn.Node.OrdPath(), sn.Node.Name())
	}
	return b.String()
}

// TestClusterJoinDifferential extends the join/nested differential across
// the scatter-gather path: for every branching query, the 4-shard merged
// node stream under the join evaluator is byte-identical to the nested
// reference, the cost-chosen evaluator agrees with both, and the merged
// count equals a single volume holding the same corpus.
func TestClusterJoinDifferential(t *testing.T) {
	cl := newTestCluster(t, Config{NoCountCache: true})
	db := singleVolume(t)
	ctx := context.Background()

	nonEmpty := 0
	for _, path := range joinDiffPaths {
		res, err := db.QueryCtx(ctx, path, pathdb.QueryOptions{PredEval: pathdb.PredNested})
		if err != nil {
			t.Fatalf("single volume %q: %v", path, err)
		}
		want := res.Count()

		ref, err := cl.Query(ctx, path, pathdb.QueryOptions{PredEval: pathdb.PredNested}, true)
		if err != nil {
			t.Fatalf("cluster %q [nested]: %v", path, err)
		}
		if ref.Count != want {
			t.Errorf("%q: merged nested count %d, single volume %d", path, ref.Count, want)
		}
		refFP := mergedFingerprint(ref)
		if refFP != "" {
			nonEmpty++
		}

		for _, pe := range []pathdb.PredEval{pathdb.PredJoin, pathdb.PredAuto} {
			m, err := cl.Query(ctx, path, pathdb.QueryOptions{PredEval: pe}, true)
			if err != nil {
				t.Fatalf("cluster %q [%v]: %v", path, pe, err)
			}
			if got := mergedFingerprint(m); got != refFP {
				t.Errorf("%q: merged stream diverges with %v (nested %d bytes, %v %d bytes)",
					path, pe, len(refFP), pe, len(got))
			}
		}
	}
	if nonEmpty < len(joinDiffPaths)/2 {
		t.Fatalf("only %d/%d differential queries matched nodes; fixture too small to be meaningful",
			nonEmpty, len(joinDiffPaths))
	}
}
