// Fragmentation study: the same document stored contiguously, naturally
// aged, and fully shuffled. The Simple plan degrades with fragmentation
// because it pays every inter-cluster edge as a random access in encounter
// order; the XScan plan is immune (it reads physical order regardless);
// XSchedule sits in between because the asynchronous queue re-sorts the
// pending accesses. This is the paper's core motivation (Sec. 1) made
// visible.
package main

import (
	"fmt"
	"log"

	"pathdb"
)

func main() {
	fmt.Printf("%-12s %-10s %10s %10s\n", "layout", "plan", "total[s]", "reads")
	for _, layout := range []struct {
		name string
		l    pathdb.Layout
	}{
		{"contiguous", pathdb.Contiguous},
		{"natural", pathdb.Natural},
		{"shuffled", pathdb.Shuffled},
	} {
		db, err := pathdb.GenerateXMark(
			pathdb.XMarkConfig{ScaleFactor: 1, Seed: 42, EntityScale: 0.05},
			pathdb.Options{Layout: layout.l, LayoutSeed: 9, BufferPages: 100},
		)
		if err != nil {
			log.Fatal(err)
		}
		for _, strat := range []pathdb.Strategy{pathdb.Simple, pathdb.Schedule, pathdb.Scan} {
			db.ResetStats()
			q, err := db.Query("/site/regions//item")
			if err != nil {
				log.Fatal(err)
			}
			q.WithStrategy(strat).Count()
			r := db.CostReport()
			fmt.Printf("%-12s %-10s %10.2f %10d\n", layout.name, strat, r.Total.Seconds(), r.PageReads)
		}
		fmt.Println()
	}
}
