package storage

import (
	"encoding/binary"
	"errors"
	"fmt"

	"pathdb/internal/buffer"
	"pathdb/internal/ordpath"
	"pathdb/internal/stats"
	"pathdb/internal/vdisk"
	"pathdb/internal/xmltree"
)

// Store provides access to one stored document: swizzling NodeIDs into
// directly navigable cursors, the intra-cluster navigation primitives, and
// the cluster-granular load interface used by the I/O operators.
//
// The read path is safe for concurrent use: the swizzle cache is sharded
// and decode-once, the buffer manager and disk below are concurrency-safe,
// and page images are immutable once published. Cost accounting is scoped
// by *views*: Reader returns a shallow Store sharing every cache with the
// base but charging to its own ledger and routing async cluster requests
// through its own buffer waiter — the unit the parallel engine hands each
// query. Mutating entry points (updates, SetBufferCapacity, ResetForRun)
// remain base-store, single-writer operations.
type Store struct {
	disk  *vdisk.Disk
	buf   *buffer.Manager
	dict  *xmltree.Dictionary
	led   *stats.Ledger
	model vdisk.CostModel

	rootID    NodeID
	roots     []NodeID // collection document roots (first == rootID)
	firstData uint32
	nData     uint32
	extras    []vdisk.PageID // data pages appended by updates

	cache   *swizCache     // decoded page images, shared across views
	syn     *synTable      // per-cluster synopses, shared across views
	derived *DerivedCache  // epoch-keyed derived artifacts, shared across views
	w       *buffer.Waiter // async cluster requests of this view

	// Multi-version state. vh shares the latest published version across
	// all views; pinned fixes a snapshot view to one version (it takes
	// precedence); overlay exposes a write transaction's staged images to
	// its own reads. The swizzle cache and buffer pool are keyed by
	// *physical* page, so frames of different versions of the same logical
	// page coexist until the reclaimer discards the superseded ones.
	vh      *versionHandle
	pinned  *VersionMap
	overlay map[vdisk.PageID]*pageImage
	req     map[vdisk.PageID]vdisk.PageID // physical→logical for in-flight async requests

	ckptPages []vdisk.PageID // chain of the current checkpoint (base store)
	txnState  *TxnState      // recovered at Open; adopted by the txn manager
}

// DefaultBufferPages is the pool size used when none is configured; the
// paper's setup used a 1000-page buffer.
const DefaultBufferPages = 1000

func newStore(disk *vdisk.Disk, dict *xmltree.Dictionary, roots []NodeID, firstData, nData uint32, extras []vdisk.PageID) *Store {
	s := &Store{
		disk:      disk,
		buf:       buffer.New(disk, DefaultBufferPages),
		dict:      dict,
		led:       disk.Ledger(),
		model:     disk.Model(),
		rootID:    roots[0],
		roots:     roots,
		firstData: firstData,
		nData:     nData,
		extras:    extras,
		cache:     newSwizCache(),
		syn:       newSynTable(),
		derived:   newDerivedCache(),
		vh:        &versionHandle{},
	}
	s.buf.SetEvictHandler(s.cache.drop)
	s.buf.SetVerifier(verifyPageTrailer)
	s.w = s.buf.NewWaiter(s.led)
	return s
}

// SetBufferCapacity replaces the buffer pool with one of the given
// capacity (base store only; must be called before navigation starts).
func (s *Store) SetBufferCapacity(pages int) {
	s.buf = buffer.New(s.disk, pages)
	s.buf.SetEvictHandler(s.cache.drop)
	s.buf.SetVerifier(verifyPageTrailer)
	s.cache.reset()
	s.w = s.buf.NewWaiter(s.led)
}

// Reader returns a read-only view of the store charging to led: same disk,
// buffer pool, swizzle cache and dictionary, but a private ledger and a
// private async-request waiter. The parallel engine gives every query such
// a view, so gang members account CPU, I/O waits and counters separately
// while still sharing every physical cache (and each other's loaded
// pages). Views must not be used for updates or pool reconfiguration.
func (s *Store) Reader(led *stats.Ledger) *Store {
	v := *s
	v.led = led
	v.w = s.buf.NewWaiter(led)
	v.req = nil
	return &v
}

// version returns the VersionMap this view resolves through: its pinned
// snapshot if it has one, else the latest published version, else nil
// (identity — fresh and legacy volumes).
func (s *Store) version() *VersionMap {
	if s.pinned != nil {
		return s.pinned
	}
	if s.vh != nil {
		return s.vh.Load()
	}
	return nil
}

// resolve maps a logical page id to the physical page holding its bytes in
// this view's version.
func (s *Store) resolve(p vdisk.PageID) vdisk.PageID {
	if vm := s.version(); vm != nil {
		return vm.Resolve(p)
	}
	return p
}

// pageEpoch returns the write epoch of logical page p in this view's
// version (0 for never-written pages and versionless volumes).
func (s *Store) pageEpoch(p vdisk.PageID) uint64 {
	if vm := s.version(); vm != nil {
		return vm.PageEpoch(p)
	}
	return 0
}

// VersionEpoch returns the commit epoch of this view's version (0 for
// versionless volumes and the initial version).
func (s *Store) VersionEpoch() uint64 {
	if vm := s.version(); vm != nil {
		return vm.Epoch()
	}
	return 0
}

// WrittenSince calls fn for every logical page whose last-write epoch in
// this view's version is strictly greater than since. No-op on versionless
// volumes. Used by the plan chooser's incremental statistics refresh.
func (s *Store) WrittenSince(since uint64, fn func(p vdisk.PageID, epoch uint64)) {
	if vm := s.version(); vm != nil {
		vm.WrittenSince(since, fn)
	}
}

// extrasList returns the extension-page directory of this view's version.
func (s *Store) extrasList() []vdisk.PageID {
	if vm := s.version(); vm != nil {
		return vm.Extras()
	}
	return s.extras
}

// WithSnapshot returns a read view pinned to version vm: every logical
// page resolves through vm for the view's whole lifetime, regardless of
// later commits. The txn manager hands these out to queries.
func (s *Store) WithSnapshot(vm *VersionMap, led *stats.Ledger) *Store {
	v := s.Reader(led)
	v.pinned = vm
	return v
}

// SnapshotView is Reader pinned to the latest published version — a
// consistent point-in-time view even while writers publish new versions.
// On a volume without transaction state it degrades to a plain Reader.
func (s *Store) SnapshotView(led *stats.Ledger) *Store {
	return s.WithSnapshot(s.version(), led)
}

// PublishVersion atomically installs vm as the volume's latest version;
// all non-pinned views resolve through it from now on.
func (s *Store) PublishVersion(vm *VersionMap) { s.vh.Store(vm) }

// CurrentVersion returns the latest published version (nil if the volume
// has no transaction state).
func (s *Store) CurrentVersion() *VersionMap { return s.vh.Load() }

// TxnState returns the durable transaction state recovered at Open (nil
// for volumes that were never written transactionally). The txn manager
// adopts it; the slices are owned by the caller afterwards.
func (s *Store) TxnState() *TxnState { return s.txnState }

// WriteData finalizes payload (padding + checksum trailer) and writes it
// at physical page p — the copy-on-write staging write of the txn commit
// path. The page must be unreferenced by every live version.
func (s *Store) WriteData(p vdisk.PageID, payload []byte) {
	writePage(s.disk, p, payload)
}

// ZeroPage overwrites p with raw zeros (no checksum trailer, so the page
// reads back as invalid). Recycled pages must be zeroed before they are
// linked as preallocated log heads; see PageAlloc.
func (s *Store) ZeroPage(p vdisk.PageID) {
	s.disk.Write(p, make([]byte, s.disk.PageSize()))
}

// DropVersion evicts the superseded physical page p from the buffer pool
// and the swizzle cache before its slot is recycled. False when a frame is
// still pinned (transient; the reclaimer retries).
func (s *Store) DropVersion(p vdisk.PageID) bool {
	if !s.buf.Discard(p) {
		return false
	}
	s.cache.drop(p)
	return true
}

// Buffer exposes the buffer manager (for stats and tests).
func (s *Store) Buffer() *buffer.Manager { return s.buf }

// Disk exposes the underlying device.
func (s *Store) Disk() *vdisk.Disk { return s.disk }

// Dict returns the shared tag dictionary.
func (s *Store) Dict() *xmltree.Dictionary { return s.dict }

// Ledger returns the cost ledger.
func (s *Store) Ledger() *stats.Ledger { return s.led }

// Root returns the NodeID of the (first) document node.
func (s *Store) Root() NodeID { return s.rootID }

// Roots returns the document nodes of the stored collection, in collection
// order. Single-document volumes have exactly one.
func (s *Store) Roots() []NodeID { return s.roots }

// DataPages returns the physical range of the bulk-loaded document pages
// [first, first+n); pages appended by later updates are listed separately
// (NumDataPages / DataPage iterate over both).
func (s *Store) DataPages() (first vdisk.PageID, n int) {
	return vdisk.PageID(s.firstData), int(s.nData)
}

// NumDataPages returns the number of document pages including pages
// appended by updates, as of this view's version.
func (s *Store) NumDataPages() int { return int(s.nData) + len(s.extrasList()) }

// DataPage returns the i-th document page in scan order: the bulk-loaded
// range first, then update extensions in allocation order. The returned id
// is logical; the read path resolves it to the version's physical page.
func (s *Store) DataPage(i int) vdisk.PageID {
	if i < int(s.nData) {
		return vdisk.PageID(s.firstData) + vdisk.PageID(i)
	}
	return s.extrasList()[i-int(s.nData)]
}

// ClusterOf returns the cluster (page) a node belongs to, a pure NodeID
// computation (Sec. 3.3).
func ClusterOf(id NodeID) vdisk.PageID { return id.Page() }

// ResetForRun flushes the buffer pool, clears swizzled images and zeroes
// the ledger — each measured run starts cold, as in the paper's setup
// (O_DIRECT, distinct documents per run). Base store only; any Reader
// views and their queries must have finished.
func (s *Store) ResetForRun() {
	s.w.Cancel()
	s.buf.FlushAll()
	s.cache.reset()
	s.derived.reset()
	s.led.Reset()
	s.disk.ResetClockState()
}

// image returns the decoded (swizzled) representation of a page, loading
// and decoding it if necessary. Decoding charges one node-visit per record
// — the representation change from external to in-memory format — to the
// ledger of the view that won the decode race; concurrent losers block on
// the entry latch and share the winner's image for free (they raced the
// same work, not skipped it). A failed load or decode escalates as a page
// fault (typed panic recovered at query boundaries) and leaves the entry
// empty, so a later access retries the load rather than inheriting the
// failure.
func (s *Store) image(p vdisk.PageID) *pageImage {
	if s.overlay != nil {
		if img, ok := s.overlay[p]; ok {
			return img
		}
	}
	// The cache is keyed by (logical page, write epoch) — the
	// version-independent name of these bytes — so snapshots at different
	// epochs share one decoded image for every page the commits between
	// them did not touch, and a commit invalidates exactly the clusters it
	// rewrote. The buffer pool below stays keyed by the resolved *physical*
	// page; the decode keeps the *logical* id, which is what NodeIDs embed.
	key := swizKey{page: p, epoch: s.pageEpoch(p)}
	e := s.cache.entry(key)
	if img := e.img.Load(); img != nil {
		return img
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if img := e.img.Load(); img != nil {
		return img
	}
	phys := s.resolve(p)
	f, err := s.buf.FixOn(s.led, phys)
	if err != nil {
		throwPageError(p, err)
	}
	img, err := decodePage(p, f.Data, s.disk.PageSize())
	s.buf.Unfix(f)
	if err != nil {
		throwPageError(p, err) // malformed records: corruption past the checksum
	}
	s.led.AdvanceCPU(stats.Ticks(len(img.recs)) * s.model.CPUNodeVisit)
	e.img.Store(img)
	s.cache.track(phys, key)
	s.syn.publish(p, synopsisOf(img, key.epoch))
	return img
}

// LoadCluster ensures a cluster is buffered and decoded, reading it
// synchronously if absent. XScan calls this in ascending physical order,
// which the disk detects as a sequential pattern.
func (s *Store) LoadCluster(p vdisk.PageID) { s.image(p) }

// BordersOf lists the NodeIDs of all border (proxy) records in a cluster,
// the seeds of XScan's speculative instances (Sec. 5.4.3.2). The cluster
// must already be loaded. The returned slice is the image's cached copy,
// materialized once at decode time and shared by every caller — callers
// must not mutate it.
func (s *Store) BordersOf(p vdisk.PageID) []NodeID {
	return s.image(p).borderIDs
}

// Loaded reports whether the page is present in the buffer pool.
func (s *Store) Loaded(p vdisk.PageID) bool { return s.buf.Contains(s.resolve(p)) }

// RequestCluster schedules an asynchronous load of a cluster (XSchedule's
// interface to the I/O subsystem) on this view's waiter. The request is
// issued for the version-resolved physical page; WaitCluster translates
// completions back so operators keep reasoning in logical cluster ids.
func (s *Store) RequestCluster(p vdisk.PageID) {
	phys := s.resolve(p)
	if phys != p {
		if s.req == nil {
			s.req = map[vdisk.PageID]vdisk.PageID{}
		}
		s.req[phys] = p
	}
	s.w.Request(phys)
}

// WaitCluster blocks until some cluster requested through this view is
// loaded and returns it. Other views' requests neither wake this one nor
// are consumed by it — the completion fanout that keeps parallel gang
// members from stealing each other's wakeups. A page whose load failed
// terminally escalates as a page fault (typed panic recovered at query
// boundaries).
func (s *Store) WaitCluster() (vdisk.PageID, bool) {
	p, ok, err := s.w.WaitLoaded()
	if err != nil {
		throwPageError(p, err)
	}
	if ok && s.req != nil {
		if logical, hit := s.req[p]; hit {
			p = logical
		}
	}
	return p, ok
}

// CancelRequests abandons this view's outstanding cluster requests. A
// cancelled query's plan leaves its prefetches with the I/O subsystem; the
// engine calls this so they cannot surface later, while requests shared
// with other views stay in flight for them.
func (s *Store) CancelRequests() { s.w.Cancel() }

// Cursor is a swizzled node reference: direct pointers into the decoded
// page image, so navigation between cursors on the same page costs no
// buffer-manager interaction (Sec. 5.3.2.3).
type Cursor struct {
	st   *Store
	img  *pageImage
	page vdisk.PageID
	slot uint16
	attr int // -1 for the record itself, else attribute index
}

// Swizzle converts a NodeID into a Cursor, charging the swizzle cost
// (buffer lookup, translation); the cluster is loaded synchronously if it
// is not resident.
func (s *Store) Swizzle(id NodeID) Cursor {
	stats.Inc(&s.led.Swizzles)
	s.led.AdvanceCPU(s.model.CPUSwizzle)
	img := s.image(id.Page())
	attr := -1
	if i, ok := id.AttrIndex(); ok {
		attr = i
	}
	if int(id.Slot()) >= len(img.recs) {
		panic(fmt.Sprintf("storage: swizzle of invalid slot %v", id))
	}
	return Cursor{st: s, img: img, page: id.Page(), slot: id.Slot(), attr: attr}
}

// Unswizzle converts a Cursor back into a NodeID (cheap).
func (c Cursor) Unswizzle() NodeID {
	stats.Inc(&c.st.led.Unswizzles)
	c.st.led.AdvanceCPU(c.st.model.CPUUnswizzle)
	id := MakeNodeID(c.page, c.slot)
	if c.attr >= 0 {
		id = id.WithAttr(c.attr)
	}
	return id
}

// ID returns the cursor's NodeID without charging unswizzle cost (for
// assertions and tests).
func (c Cursor) ID() NodeID {
	id := MakeNodeID(c.page, c.slot)
	if c.attr >= 0 {
		id = id.WithAttr(c.attr)
	}
	return id
}

func (c Cursor) rec() *rec { return &c.img.recs[c.slot] }

// Valid reports whether the cursor references a node.
func (c Cursor) Valid() bool { return c.st != nil }

// IsBorder reports whether the cursor references a border (proxy) node.
func (c Cursor) IsBorder() bool { return c.attr < 0 && c.rec().kind.IsProxy() }

// RecKind returns the physical record kind.
func (c Cursor) RecKind() RecKind {
	if c.attr >= 0 {
		return RecElem // attribute of an element record
	}
	return c.rec().kind
}

// Kind returns the logical node kind; panics on border nodes.
func (c Cursor) Kind() xmltree.Kind {
	if c.attr >= 0 {
		return xmltree.Attribute
	}
	return c.rec().kind.LogicalKind()
}

// Tag returns the element or attribute tag.
func (c Cursor) Tag() xmltree.TagID {
	if c.attr >= 0 {
		return c.rec().attrs[c.attr].tag
	}
	return c.rec().tag
}

// Text returns text/comment/PI content or the attribute value.
func (c Cursor) Text() string {
	if c.attr >= 0 {
		return c.rec().attrs[c.attr].val
	}
	return c.rec().text
}

// OrdKey returns the document-order key of the node. Attribute nodes share
// their element's key; border nodes return nil.
func (c Cursor) OrdKey() ordpath.Key { return c.rec().ord }

// Target returns the companion NodeID of a border node (the paper's
// target() operation). It panics on core nodes.
func (c Cursor) Target() NodeID {
	r := c.rec()
	if !r.kind.IsProxy() {
		panic("storage: Target on a core node")
	}
	return r.target
}

// AttrCount returns the number of attributes on an element.
func (c Cursor) AttrCount() int { return len(c.rec().attrs) }

// StringValue computes the XPath string-value of a node: the attribute
// value, the text content, or — for elements and documents — the
// concatenated descendant text, crossing cluster borders as needed.
func (s *Store) StringValue(id NodeID) string {
	c := s.Swizzle(id)
	switch c.Kind() {
	case xmltree.Attribute, xmltree.Text, xmltree.Comment, xmltree.ProcInst:
		return c.Text()
	case xmltree.Document:
		for i, r := range s.roots {
			if r == id.WithoutAttr() {
				return s.ExportDocument(i).TextContent()
			}
		}
		return ""
	default:
		return s.ExportSubtree(id).TextContent()
	}
}

// --- persistence -----------------------------------------------------------

const metaMagic = "PATHDB1\x00"

type metaInfo struct {
	roots     []NodeID // collection document roots
	firstData uint32
	nData     uint32
	dictStart uint32
	dictCount uint32
	walPage   vdisk.PageID   // committed-but-unapplied WAL header (0 = none)
	extras    []vdisk.PageID // update-extension pages, in scan order
	ckptPage  vdisk.PageID   // transaction checkpoint chain head (0 = none)
}

func writeMeta(disk *vdisk.Disk, page vdisk.PageID, m metaInfo) {
	buf := make([]byte, 8+4*5+4+4*len(m.extras)+4+8*len(m.roots)+4)
	copy(buf, metaMagic)
	binary.LittleEndian.PutUint32(buf[8:], m.firstData)
	binary.LittleEndian.PutUint32(buf[12:], m.nData)
	binary.LittleEndian.PutUint32(buf[16:], m.dictStart)
	binary.LittleEndian.PutUint32(buf[20:], m.dictCount)
	binary.LittleEndian.PutUint32(buf[24:], uint32(m.walPage))
	binary.LittleEndian.PutUint32(buf[28:], uint32(len(m.extras)))
	off := 32
	for _, p := range m.extras {
		binary.LittleEndian.PutUint32(buf[off:], uint32(p))
		off += 4
	}
	binary.LittleEndian.PutUint32(buf[off:], uint32(len(m.roots)))
	off += 4
	for _, r := range m.roots {
		binary.LittleEndian.PutUint64(buf[off:], uint64(r))
		off += 8
	}
	// Trailing fields (added after v0 volumes; zero-padding makes their
	// absence read back as zero): the checkpoint chain head.
	binary.LittleEndian.PutUint32(buf[off:], uint32(m.ckptPage))
	if len(buf) > usable(disk.PageSize()) {
		panic("storage: meta page overflow (too many extension pages or roots)")
	}
	writePage(disk, page, buf)
}

func readMeta(disk *vdisk.Disk) (metaInfo, error) {
	buf := make([]byte, disk.PageSize())
	if err := readPageVerified(disk, 0, buf); err != nil {
		return metaInfo{}, fmt.Errorf("storage: meta page unreadable: %w", err)
	}
	if string(buf[:8]) != metaMagic {
		return metaInfo{}, errors.New("storage: bad magic, not a pathdb volume")
	}
	m := metaInfo{
		firstData: binary.LittleEndian.Uint32(buf[8:]),
		nData:     binary.LittleEndian.Uint32(buf[12:]),
		dictStart: binary.LittleEndian.Uint32(buf[16:]),
		dictCount: binary.LittleEndian.Uint32(buf[20:]),
		walPage:   vdisk.PageID(binary.LittleEndian.Uint32(buf[24:])),
	}
	nExtra := binary.LittleEndian.Uint32(buf[28:])
	off := 32
	for i := uint32(0); i < nExtra; i++ {
		m.extras = append(m.extras, vdisk.PageID(binary.LittleEndian.Uint32(buf[off:])))
		off += 4
	}
	nRoots := binary.LittleEndian.Uint32(buf[off:])
	off += 4
	for i := uint32(0); i < nRoots; i++ {
		m.roots = append(m.roots, NodeID(binary.LittleEndian.Uint64(buf[off:])))
		off += 8
	}
	if off+4 <= len(buf) {
		m.ckptPage = vdisk.PageID(binary.LittleEndian.Uint32(buf[off:]))
	}
	if len(m.roots) == 0 {
		return metaInfo{}, errors.New("storage: volume has no document roots")
	}
	return m, nil
}

// writeDictionary appends the tag dictionary after the data pages as a
// length-prefixed name list spanning as many pages as needed.
func writeDictionary(disk *vdisk.Disk, dict *xmltree.Dictionary) (start, count uint32) {
	var payload []byte
	payload = appendUvarint(payload, uint64(dict.Len()))
	for i := 0; i < dict.Len(); i++ {
		payload = appendString(payload, dict.Name(xmltree.TagID(i)))
	}
	ps := usable(disk.PageSize())
	first := vdisk.PageID(disk.NumPages())
	n := 0
	for off := 0; off < len(payload) || n == 0; off += ps {
		p := disk.Alloc()
		end := off + ps
		if end > len(payload) {
			end = len(payload)
		}
		writePage(disk, p, payload[off:end])
		n++
	}
	return uint32(first), uint32(n)
}

func readDictionary(disk *vdisk.Disk, start, count uint32) (*xmltree.Dictionary, error) {
	ps := disk.PageSize()
	payload := make([]byte, 0, int(count)*usable(ps))
	buf := make([]byte, ps)
	for i := uint32(0); i < count; i++ {
		if err := readPageVerified(disk, vdisk.PageID(start+i), buf); err != nil {
			return nil, fmt.Errorf("storage: dictionary page %d unreadable: %w", start+i, err)
		}
		payload = append(payload, buf[:usable(ps)]...)
	}
	d := &decodeCursor{b: payload}
	n, err := d.uvarint()
	if err != nil {
		return nil, fmt.Errorf("storage: dictionary header: %w", err)
	}
	dict := xmltree.NewDictionary()
	for i := uint64(0); i < n; i++ {
		name, err := d.bytes()
		if err != nil {
			return nil, fmt.Errorf("storage: dictionary entry %d: %w", i, err)
		}
		dict.Intern(string(name))
	}
	return dict, nil
}

// Open attaches to a previously imported volume, reconstructing the
// dictionary from disk and replaying any committed-but-unapplied update
// transaction (crash recovery): first the legacy single-writer WAL, then
// the transactional redo log (checkpoint + commit-group chains), whose
// folded state is persisted as a fresh checkpoint and published as the
// volume's current version. The ledger is reset afterwards.
func Open(disk *vdisk.Disk) (*Store, error) {
	m, err := readMeta(disk)
	if err != nil {
		return nil, err
	}
	if err := recoverWAL(disk, &m); err != nil {
		return nil, err
	}
	st, err := recoverTxn(disk, &m)
	if err != nil {
		return nil, err
	}
	dict, err := readDictionary(disk, m.dictStart, m.dictCount)
	if err != nil {
		return nil, err
	}
	s := newStore(disk, dict, m.roots, m.firstData, m.nData, m.extras)
	if st != nil {
		// Fold the replayed groups into a fresh checkpoint so the next
		// crash recovers from here, and publish the recovered version.
		_, next, cerr := s.WriteCheckpoint(*st, s.disk.Alloc)
		if cerr != nil {
			return nil, cerr
		}
		st.LogHead = next
		s.txnState = st
		s.PublishVersion(st.Version())
	}
	disk.Ledger().Reset()
	disk.ResetClockState()
	return s, nil
}
