// Command benchgate compares a fresh BENCH_xload.json against a committed
// baseline and fails (exit 1) when an allocation or throughput figure has
// regressed beyond the allowed ratio. It is the CI gate behind `make
// bench-compare`: allocs/op is deterministic for a fixed workload, so a
// regression there is a code change, not machine noise; wall-clock
// throughput is machine dependent and only reported, never gated, unless
// -min-qps-ratio is set explicitly. Streamed snapshots (xload -stream)
// additionally report time-to-first-result percentiles, gated the same
// opt-in way via -max-ttfr-regress; streamed and buffered snapshots are
// never compared against each other.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type snapshot struct {
	AllocsPerOp   int64   `json:"allocs_per_op"`
	WallQPS       float64 `json:"throughput_wall_qps"`
	VirtualQPS    float64 `json:"throughput_virtual_qps"`
	Mix           string  `json:"mix"`
	Clients       int     `json:"clients"`
	Requests      int     `json:"requests"`
	WriteFraction float64 `json:"write_frac"`
	Shards        int     `json:"shards"` // 0 (pre-sharding snapshots) and 1 both mean single-volume

	// Streamed runs (xload -stream): time-to-first-result percentiles.
	// Like wall qps these are machine dependent, so TTFR is reported by
	// default and only gated when -max-ttfr-regress is set explicitly.
	Stream     bool    `json:"stream"`
	P50TTFRSec float64 `json:"p50_ttfr_s"`
	P99TTFRSec float64 `json:"p99_ttfr_s"`

	// Predicate evaluation: the main run's evaluator and the optional
	// join-vs-nested branch-mix replay (xload -pred-compare). Wall-based
	// speedup is machine dependent and only reported; the replay's
	// allocs/op figures are deterministic and gated like the headline one.
	Preds       string `json:"preds"`
	PredCompare *struct {
		NestedWallS  float64 `json:"nested_wall_s"`
		JoinWallS    float64 `json:"join_wall_s"`
		NestedAllocs int64   `json:"nested_allocs_per_op"`
		JoinAllocs   int64   `json:"join_allocs_per_op"`
		Speedup      float64 `json:"speedup"`
	} `json:"pred_compare"`
}

// predsOf normalizes the evaluator: snapshots written before predicate
// evaluation was configurable omit the field, which means auto.
func predsOf(s snapshot) string {
	if s.Preds == "" {
		return "auto"
	}
	return s.Preds
}

// shardsOf normalizes the shard count: snapshots written before sharding
// existed omit the field entirely, which is the same shape as 1 shard.
func shardsOf(s snapshot) int {
	if s.Shards < 2 {
		return 1
	}
	return s.Shards
}

func load(path string) (snapshot, error) {
	var s snapshot
	b, err := os.ReadFile(path)
	if err != nil {
		return s, err
	}
	return s, json.Unmarshal(b, &s)
}

func main() {
	oldPath := flag.String("old", "BENCH_xload.json", "committed baseline snapshot")
	newPath := flag.String("new", "", "freshly generated snapshot (required)")
	maxAllocRegress := flag.Float64("max-alloc-regress", 0.10,
		"fail when new allocs/op exceeds baseline by more than this fraction")
	allocSlack := flag.Int64("alloc-slack", 16,
		"absolute allocs/op headroom on top of the fractional limit (pool warm-up jitter)")
	minQPSRatio := flag.Float64("min-qps-ratio", 0,
		"if >0, fail when new wall qps falls below baseline*ratio (off by default: machine dependent)")
	maxTTFRRegress := flag.Float64("max-ttfr-regress", 0,
		"if >0, fail when new p50 time-to-first-result exceeds baseline*(1+this) on streamed snapshots (off by default: machine dependent)")
	flag.Parse()
	if *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -new is required")
		os.Exit(2)
	}

	old, err := load(*oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: baseline: %v\n", err)
		os.Exit(2)
	}
	cur, err := load(*newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: new snapshot: %v\n", err)
		os.Exit(2)
	}
	if old.Mix != cur.Mix || old.WriteFraction != cur.WriteFraction || old.Requests != cur.Requests {
		fmt.Fprintf(os.Stderr, "benchgate: workloads differ (baseline %q write-frac %g requests %d, new %q write-frac %g requests %d); not comparable\n",
			old.Mix, old.WriteFraction, old.Requests, cur.Mix, cur.WriteFraction, cur.Requests)
		os.Exit(2)
	}
	if shardsOf(old) != shardsOf(cur) {
		fmt.Fprintf(os.Stderr, "benchgate: shard counts differ (baseline %d, new %d); not comparable\n",
			shardsOf(old), shardsOf(cur))
		os.Exit(2)
	}
	if old.Stream != cur.Stream {
		fmt.Fprintf(os.Stderr, "benchgate: delivery modes differ (baseline stream=%v, new stream=%v); not comparable\n",
			old.Stream, cur.Stream)
		os.Exit(2)
	}
	if predsOf(old) != predsOf(cur) {
		fmt.Fprintf(os.Stderr, "benchgate: predicate evaluators differ (baseline %q, new %q); not comparable\n",
			predsOf(old), predsOf(cur))
		os.Exit(2)
	}

	limit := int64(float64(old.AllocsPerOp)*(1+*maxAllocRegress)) + *allocSlack
	fmt.Printf("allocs/op: baseline %d, new %d (limit %d)\n", old.AllocsPerOp, cur.AllocsPerOp, limit)
	fmt.Printf("wall qps:  baseline %.1f, new %.1f\n", old.WallQPS, cur.WallQPS)
	fail := false
	if cur.AllocsPerOp > limit {
		fmt.Fprintf(os.Stderr, "benchgate: FAIL allocs/op regressed %d -> %d (>%d%%)\n",
			old.AllocsPerOp, cur.AllocsPerOp, int(*maxAllocRegress*100))
		fail = true
	}
	if *minQPSRatio > 0 && cur.WallQPS < old.WallQPS**minQPSRatio {
		fmt.Fprintf(os.Stderr, "benchgate: FAIL wall qps regressed %.1f -> %.1f (below %.0f%% of baseline)\n",
			old.WallQPS, cur.WallQPS, *minQPSRatio*100)
		fail = true
	}
	if cur.PredCompare != nil {
		fmt.Printf("pred-compare: nested %.3fs vs join %.3fs (%.2fx), allocs/op %d vs %d\n",
			cur.PredCompare.NestedWallS, cur.PredCompare.JoinWallS, cur.PredCompare.Speedup,
			cur.PredCompare.NestedAllocs, cur.PredCompare.JoinAllocs)
		if old.PredCompare != nil {
			limit := int64(float64(old.PredCompare.JoinAllocs)*(1+*maxAllocRegress)) + *allocSlack
			if cur.PredCompare.JoinAllocs > limit {
				fmt.Fprintf(os.Stderr, "benchgate: FAIL pred-compare join allocs/op regressed %d -> %d (limit %d)\n",
					old.PredCompare.JoinAllocs, cur.PredCompare.JoinAllocs, limit)
				fail = true
			}
		}
	}
	if cur.Stream {
		fmt.Printf("ttfr p50:  baseline %.6fs, new %.6fs (p99 %.6fs -> %.6fs)\n",
			old.P50TTFRSec, cur.P50TTFRSec, old.P99TTFRSec, cur.P99TTFRSec)
		if *maxTTFRRegress > 0 && old.P50TTFRSec > 0 &&
			cur.P50TTFRSec > old.P50TTFRSec*(1+*maxTTFRRegress) {
			fmt.Fprintf(os.Stderr, "benchgate: FAIL p50 ttfr regressed %.6fs -> %.6fs (>%d%%)\n",
				old.P50TTFRSec, cur.P50TTFRSec, int(*maxTTFRRegress*100))
			fail = true
		}
	}
	if fail {
		os.Exit(1)
	}
	fmt.Println("benchgate: ok")
}
