package storage

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"

	"pathdb/internal/stats"
	"pathdb/internal/xmltree"
	"pathdb/internal/xpath"
)

// liveIters counts StepIters checked out by Step and not yet Released. A
// query that ends — normally, by cancellation, or by a fault-plane panic
// unwinding through the operator chain — must restore the count, so tests
// can assert no navigation iterator leaks from any exit path.
var liveIters atomic.Int64

// LiveStepIters returns the number of navigation iterators currently
// checked out of the pool (leak detection in tests).
func LiveStepIters() int64 { return liveIters.Load() }

// StepIter enumerates, one node at a time, the result of applying a single
// location step to a context cursor using intra-cluster navigation only —
// the navigational primitive of Sec. 3.5. Core nodes are filtered through
// the step's node test; border nodes encountered during the enumeration
// are returned as-is (the caller defers the crossing), implementing the
// two cases of the XStep algorithm (Sec. 5.3.2.2).
//
// The context may itself be a border node, in which case the iterator
// performs the *continuation* of an interrupted enumeration on the far
// side of the border. The continuation semantics dispatch on the border
// kind: a ProxyParent continues a downward crossing (child/descendant/
// sibling arrival), a ProxyChild continues an upward crossing (parent/
// ancestor/sibling departure).
//
// Iterators come from a pool: callers that finish with one should Release
// it so the next Step on the same worker reuses the struct and its DFS
// stack instead of allocating — Step is the hottest allocation site and
// its cost multiplies under parallel gangs. Releasing is optional
// (unreleased iterators are ordinary garbage) but using an iterator after
// Release is a use-after-free.
type StepIter struct {
	st  *Store
	img *pageImage

	axis xpath.Axis
	test xpath.NodeTest

	mode     iterMode
	slots    []uint16 // list mode candidates / DFS stack
	pos      int      // list mode position
	rev      bool     // list mode: iterate in reverse
	up       int      // up mode: next slot, -1 when done
	attrs    int      // attr mode position / context attribute index
	slot     uint16   // context slot (attr modes)
	selfAttr bool     // emit the context attribute itself first
	done     bool

	// Bitmap-batched state (modeBits, and bit-filtered list modes): the
	// name-test occupancy mask over the cluster's pre-order positions.
	// bits may be nil (test matches no core record — only borders emit);
	// it aliases either an immutable nav-owned bitset or maskBuf.
	bits    []uint64
	bitPos  int // next pre-order position to probe (modeBits)
	bitEnd  int // exclusive end of the pre-order range (modeBits)
	useBits bool

	owned   bool     // slots is iterator-owned scratch, not a page alias
	scratch []uint16 // retained backing array for owned slots
	maskBuf []uint64 // retained scratch for combined test masks
}

type iterMode uint8

const (
	modeDone iterMode = iota
	modeSingle
	modeList
	modeDFS
	modeUp
	modeAttrs
	modeBits
)

// stepIterPool recycles released StepIters (with their slot scratch) so
// steady-state navigation does not allocate per step.
var stepIterPool = sync.Pool{New: func() any { return new(StepIter) }}

// Release returns the iterator to the pool, keeping the larger of its
// scratch and an iterator-owned slots array for reuse. The iterator must
// not be used afterwards. Safe on a nil iterator.
func (it *StepIter) Release() {
	if it == nil {
		return
	}
	liveIters.Add(-1)
	scratch := it.scratch
	if it.owned && cap(it.slots) > cap(scratch) {
		scratch = it.slots
	}
	maskBuf := it.maskBuf
	*it = StepIter{scratch: scratch[:0], maskBuf: maskBuf[:0]}
	stepIterPool.Put(it)
}

// initMask materializes the test's occupancy mask for the cluster and
// enables bit-filtered emission. The mask build costs one set operation
// per bitset word, charged here; every emitted node still pays its visit.
func (it *StepIter) initMask(nav *pageNav) {
	if cap(it.maskBuf) < nav.words {
		it.maskBuf = make([]uint64, nav.words)
	}
	it.bits = nav.testMask(it.test, it.maskBuf[:nav.words])
	it.useBits = true
	it.st.led.AdvanceCPU(stats.Ticks(nav.words) * it.st.model.CPUSetOp)
}

// initBitRange switches the iterator to modeBits over the pre-order range
// [lo, hi) — the batched equivalent of a DFS enumeration.
func (it *StepIter) initBitRange(nav *pageNav, lo, hi int) {
	it.mode = modeBits
	it.bitPos, it.bitEnd = lo, hi
	it.initMask(nav)
}

// own makes slots a single iterator-owned candidate.
func (it *StepIter) own(v uint16) {
	it.slots = append(it.scratch[:0], v)
	it.owned = true
}

// ownReversed fills slots with s reversed, reusing the iterator's scratch.
func (it *StepIter) ownReversed(s []uint16) {
	buf := it.scratch[:0]
	for i := len(s) - 1; i >= 0; i-- {
		buf = append(buf, s[i])
	}
	it.slots = buf
	it.owned = true
}

// Step starts the enumeration of one location step from ctx.
func (s *Store) Step(ctx Cursor, axis xpath.Axis, test xpath.NodeTest) *StepIter {
	it := stepIterPool.Get().(*StepIter)
	liveIters.Add(1)
	scratch := it.scratch
	maskBuf := it.maskBuf
	*it = StepIter{st: s, img: ctx.img, axis: axis, test: test, slot: ctx.slot, scratch: scratch[:0], maskBuf: maskBuf[:0]}
	r := ctx.rec()

	if ctx.attr >= 0 {
		// From an attribute node only self, parent and the ancestor axes
		// are meaningful (attributes have no children or siblings in the
		// XPath data model).
		switch axis {
		case xpath.Self:
			it.selfAttr = true
			it.attrs = ctx.attr
			it.mode = modeDone
		case xpath.AncestorOrSelf:
			it.selfAttr = true
			it.attrs = ctx.attr
			it.mode = modeUp
			it.up = int(ctx.slot)
		case xpath.Parent:
			it.mode = modeSingle
			it.own(ctx.slot)
		case xpath.Ancestor:
			it.mode = modeUp
			it.up = int(ctx.slot)
		default:
			it.mode = modeDone
		}
		return it
	}

	nav := ctx.img.nav
	useBits := nav != nil && !navBitmapsOff.Load()

	switch r.kind {
	case RecProxyParent:
		// Downward continuation: everything below this anchor belongs to
		// the interrupted enumeration.
		switch axis {
		case xpath.Child, xpath.FollowingSibling, xpath.PrecedingSibling:
			it.mode = modeList
			it.slots = r.children
			it.rev = axis == xpath.PrecedingSibling
			if useBits {
				it.initMask(nav)
			}
		case xpath.Descendant, xpath.DescendantOrSelf:
			if useBits {
				it.initBitRange(nav, int(nav.pre[ctx.slot])+1, int(nav.subEnd[ctx.slot]))
			} else {
				it.mode = modeDFS
				it.ownReversed(r.children)
			}
		default:
			it.mode = modeDone
		}
	case RecProxyChild:
		// Upward continuation.
		switch axis {
		case xpath.Parent:
			it.mode = modeSingle
			if r.parent == noParent {
				it.mode = modeDone
			} else {
				it.own(uint16(r.parent))
			}
		case xpath.Ancestor, xpath.AncestorOrSelf:
			it.mode = modeUp
			it.up = r.parent
		case xpath.FollowingSibling, xpath.PrecedingSibling:
			it.initSiblings(r)
			if useBits && it.mode == modeList {
				it.initMask(nav)
			}
		default:
			it.mode = modeDone
		}
	default: // core node
		switch axis {
		case xpath.Self:
			it.mode = modeSingle
			it.own(ctx.slot)
		case xpath.Child:
			it.mode = modeList
			it.slots = r.children
			if useBits {
				it.initMask(nav)
			}
		case xpath.Descendant:
			if useBits {
				it.initBitRange(nav, int(nav.pre[ctx.slot])+1, int(nav.subEnd[ctx.slot]))
			} else {
				it.mode = modeDFS
				it.ownReversed(r.children)
			}
		case xpath.DescendantOrSelf:
			if useBits {
				it.initBitRange(nav, int(nav.pre[ctx.slot]), int(nav.subEnd[ctx.slot]))
			} else {
				it.mode = modeDFS
				it.own(ctx.slot)
			}
		case xpath.Parent:
			it.mode = modeSingle
			if r.parent == noParent {
				it.mode = modeDone
			} else {
				it.own(uint16(r.parent))
			}
		case xpath.Ancestor:
			it.mode = modeUp
			it.up = r.parent
		case xpath.AncestorOrSelf:
			it.mode = modeUp
			it.up = int(ctx.slot)
		case xpath.FollowingSibling, xpath.PrecedingSibling:
			it.initSiblings(r)
			if useBits && it.mode == modeList {
				it.initMask(nav)
			}
		case xpath.AttributeAxis:
			if r.kind == RecElem && len(r.attrs) > 0 {
				it.mode = modeAttrs
			} else {
				it.mode = modeDone
			}
		default:
			panic(fmt.Sprintf("storage: unsupported axis %v", axis))
		}
	}
	return it
}

// initSiblings prepares sibling iteration for the record r at it.slot:
// the candidates are the parent's other children after (or before,
// reversed) r's own position.
func (it *StepIter) initSiblings(r *rec) {
	if r.parent == noParent {
		it.mode = modeDone
		return
	}
	sibs := it.img.recs[r.parent].children
	idx := -1
	for i, s := range sibs {
		if s == it.slot {
			idx = i
			break
		}
	}
	if idx < 0 {
		panic("storage: node missing from its parent's child list")
	}
	it.mode = modeList
	if it.axis == xpath.FollowingSibling {
		it.slots = sibs[idx+1:]
	} else {
		it.slots = sibs[:idx]
		it.rev = true
	}
	// A fragment root's remaining siblings live across the border: its
	// physical parent is the ProxyParent anchor, which the list walk will
	// not surface by itself — the anchor *is* the border to emit, so
	// append it as a final candidate (into iterator-owned scratch; the
	// page's child list must stay untouched).
	if it.img.recs[r.parent].kind == RecProxyParent {
		appended := it.scratch[:0]
		if it.rev {
			// Reverse iteration visits it last if placed first.
			appended = append(appended, uint16(r.parent))
			appended = append(appended, it.slots...)
		} else {
			appended = append(appended, it.slots...)
			appended = append(appended, uint16(r.parent))
		}
		it.slots = appended
		it.owned = true
	}
}

// Next returns the next step result. Border nodes are returned untested;
// core nodes are filtered through the node test. ok is false at the end.
func (it *StepIter) Next() (Cursor, bool) {
	led := it.st.led
	visit := it.st.model.CPUNodeVisit
	if it.selfAttr {
		it.selfAttr = false
		stats.Inc(&led.NodesVisited)
		led.AdvanceCPU(visit)
		r := &it.img.recs[it.slot]
		if it.test.Matches(xmltree.Attribute, r.attrs[it.attrs].tag) {
			return Cursor{st: it.st, img: it.img, page: it.img.page, slot: it.slot, attr: it.attrs}, true
		}
	}
	for {
		var slot int
		switch it.mode {
		case modeDone:
			return Cursor{}, false

		case modeSingle:
			if it.done {
				return Cursor{}, false
			}
			it.done = true
			slot = int(it.slots[0])

		case modeList:
			if it.pos >= len(it.slots) {
				return Cursor{}, false
			}
			if it.rev {
				slot = int(it.slots[len(it.slots)-1-it.pos])
			} else {
				slot = int(it.slots[it.pos])
			}
			it.pos++

		case modeDFS:
			if len(it.slots) == 0 {
				return Cursor{}, false
			}
			slot = int(it.slots[len(it.slots)-1])
			it.slots = it.slots[:len(it.slots)-1]
			// Descend: children pushed in reverse for document order.
			kids := it.img.recs[slot].children
			for i := len(kids) - 1; i >= 0; i-- {
				it.slots = append(it.slots, kids[i])
			}

		case modeUp:
			if it.up == noParent {
				return Cursor{}, false
			}
			slot = it.up
			it.up = it.img.recs[slot].parent
			if it.img.recs[slot].kind == RecProxyParent {
				it.up = noParent // border ends the intra-cluster chain
			}

		case modeAttrs:
			r := &it.img.recs[it.slot]
			if it.attrs >= len(r.attrs) {
				return Cursor{}, false
			}
			stats.Inc(&led.NodesVisited)
			led.AdvanceCPU(visit)
			a := it.attrs
			it.attrs++
			if !it.test.Matches(xmltree.Attribute, r.attrs[a].tag) {
				continue
			}
			return Cursor{st: it.st, img: it.img, page: it.img.page, slot: it.slot, attr: a}, true

		case modeBits:
			// Batched enumeration: scan the (test ∪ border) occupancy
			// words over the subtree's pre-order range. The virtual clock
			// still charges one node visit per live record passed over —
			// the cost model describes the paper's node-at-a-time system,
			// not this implementation's word-level scan — accrued at the
			// same per-Next granularity as the DFS it replaces.
			nav := it.img.nav
			for it.bitPos < it.bitEnd {
				w := it.bitPos >> 6
				word := nav.proxy[w]
				if it.bits != nil {
					word |= it.bits[w]
				}
				word &= ^uint64(0) << uint(it.bitPos&63)
				if w == it.bitEnd>>6 {
					word &= uint64(1)<<uint(it.bitEnd&63) - 1
				}
				if word == 0 {
					it.chargeLive(w, it.bitPos, it.bitEnd)
					it.bitPos = (w + 1) << 6
					continue
				}
				pos := w<<6 + bits.TrailingZeros64(word)
				it.chargeLive(w, it.bitPos, pos+1)
				it.bitPos = pos + 1
				return it.cursor(nav.byPre[pos]), true
			}
			return Cursor{}, false
		}

		stats.Inc(&led.NodesVisited)
		led.AdvanceCPU(visit)
		r := &it.img.recs[slot]
		if r.kind.IsProxy() {
			return it.cursor(uint16(slot)), true
		}
		if it.useBits {
			// List candidates filter through the precomputed mask: one
			// word probe instead of a record inspection.
			if it.bits != nil && hasBit(it.bits, it.img.nav.pre[slot]) {
				return it.cursor(uint16(slot)), true
			}
			continue
		}
		if it.test.Matches(r.kind.LogicalKind(), r.tag) {
			return it.cursor(uint16(slot)), true
		}
	}
}

// chargeLive bills a node visit for every live record (core or border)
// whose pre-order position falls in [lo, min(hi, end of word w)) — the
// records a node-at-a-time DFS would have visited and rejected where the
// batched scan skips whole words.
func (it *StepIter) chargeLive(w, lo, hi int) {
	nav := it.img.nav
	live := nav.core[w] | nav.proxy[w]
	live &= ^uint64(0) << uint(lo&63)
	if hi>>6 == w {
		live &= uint64(1)<<uint(hi&63) - 1
	}
	if n := bits.OnesCount64(live); n > 0 {
		stats.Add(&it.st.led.NodesVisited, int64(n))
		it.st.led.AdvanceCPU(stats.Ticks(n) * it.st.model.CPUNodeVisit)
	}
}

func (it *StepIter) cursor(slot uint16) Cursor {
	return Cursor{st: it.st, img: it.img, page: it.img.page, slot: slot, attr: -1}
}
