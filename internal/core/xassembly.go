package core

import (
	"pathdb/internal/stats"
	"pathdb/internal/storage"
)

// Scheduler is the interface XAssembly uses to notify the I/O-performing
// operator of newly discovered clusters (Sec. 5.3.3.2). XSchedule
// implements it; XScan plans pass a nil Scheduler — the scan visits every
// cluster unconditionally (Sec. 5.4.5.3).
type Scheduler interface {
	Enqueue(Instance)
}

// XAssembly is the topmost operator of a path plan (Sec. 5.3.3, 5.4.5). It
//
//   - returns full path instances to the consumer, eliminating duplicates
//     through the reachable-right-ends set R;
//   - forwards the targets of right-incomplete instances to the scheduler
//     so their clusters get visited (R-variant behaviour); and
//   - merges speculative left-incomplete instances held in S with the
//     growing reachability knowledge in R (general behaviour), which is
//     how XScan plans assemble results out of scan order.
//
// The R-variant of Sec. 5.3.3 is exactly this operator when no
// left-incomplete instances arrive.
type XAssembly struct {
	es      *EvalState
	input   Operator
	sched   Scheduler // may be nil (XScan plans)
	pathLen int

	// FirstStepAll enables the '//' optimisation of Sec. 5.4.5.4: every
	// node is reachable after step 1, so right ends at step 1 are neither
	// stored nor checked in R. Only valid when every cluster is guaranteed
	// to be visited (XScan plans).
	FirstStepAll bool

	r     map[End]bool       // reachable right ends
	s     map[End][]Instance // speculative instances by left end
	sLen  int
	ready []Instance // instances from S whose left end became reachable
}

// NewXAssembly builds the assembly operator. sched may be nil.
func NewXAssembly(es *EvalState, input Operator, sched Scheduler) *XAssembly {
	return &XAssembly{es: es, input: input, sched: sched, pathLen: es.Len()}
}

// Open opens the producer and resets R and S (borrowed from the arena
// when the plan has one).
func (a *XAssembly) Open() {
	a.input.Open()
	ar := a.es.Arena
	a.r = ar.takeEndSet()
	a.s = ar.takeEndInsts()
	a.sLen = 0
	a.ready = ar.takeReady()
}

// Close releases the memory structures (back to the arena, if any).
func (a *XAssembly) Close() {
	a.input.Close()
	ar := a.es.Arena
	ar.putEndSet(a.r)
	ar.putEndInsts(a.s)
	ar.putReady(a.ready)
	a.r, a.s, a.ready = nil, nil, nil
}

// reachable reports whether an end is known reachable.
func (a *XAssembly) reachable(e End) bool {
	a.es.chargeSetOp(1)
	stats.Inc(&a.es.ledger().SetLookups)
	if a.FirstStepAll && e.Step == 1 {
		return true
	}
	return a.r[e]
}

// addReachable inserts an end into R, waking any speculative instances
// waiting on it. It reports whether the end was new.
func (a *XAssembly) addReachable(e End) bool {
	a.es.chargeSetOp(1)
	stats.Inc(&a.es.ledger().SetLookups)
	if a.FirstStepAll && e.Step == 1 {
		// Implicitly present; wake waiters but do not store.
		a.wake(e)
		return !a.r[e] && !a.markImplicit(e)
	}
	if a.r[e] {
		return false
	}
	a.es.chargeSetOp(1)
	stats.Inc(&a.es.ledger().SetInserts)
	a.r[e] = true
	a.wake(e)
	return true
}

// markImplicit records implicit step-1 ends so duplicate wake-ups of the
// same end report "not new". Reuses R storage.
func (a *XAssembly) markImplicit(e End) bool {
	if a.r[e] {
		return true
	}
	a.r[e] = true
	return false
}

// wake moves the speculative instances waiting on end e to the ready list.
func (a *XAssembly) wake(e End) {
	if waiting, ok := a.s[e]; ok {
		a.ready = append(a.ready, waiting...)
		delete(a.s, e)
		a.es.Arena.putInsts(waiting)
		a.sLen -= len(waiting)
		a.es.chargeSetOp(len(waiting))
	}
}

// Next implements the XAssembly next method (Sec. 5.4.5.2): case 1
// processes reachable speculative instances, case 2 pulls from the
// producer.
func (a *XAssembly) Next() (Instance, bool) {
	for {
		if a.es.Cancelled() {
			return Instance{}, false
		}
		// Case 1: a speculative instance whose left end is reachable.
		if n := len(a.ready); n > 0 {
			x := a.ready[n-1]
			a.ready = a.ready[:n-1]
			if out, ok := a.emitReachable(x); ok {
				return out, true
			}
			continue
		}

		// Case 2: pull a new instance from the XStep chain.
		y, ok := a.input.Next()
		if !ok {
			return Instance{}, false
		}
		a.es.chargeTuple()

		if a.es.Fallback() {
			// Fallback mode: only full instances arrive (the XStep chain
			// crosses borders); XAssembly degrades to duplicate
			// elimination on the result (Sec. 5.4.6).
			if !y.Full(a.pathLen) {
				continue
			}
			if a.addReachable(End{Step: a.pathLen, Node: y.NR}) {
				return y, true
			}
			continue
		}

		switch {
		case y.Full(a.pathLen):
			if a.addReachable(End{Step: a.pathLen, Node: y.NR}) {
				return y, true
			}
		case !y.LeftComplete():
			// Speculative: park in S (or straight to ready if its left
			// end is already reachable).
			a.park(y.dropCur())
		case y.NRBorder:
			// Left-complete, right-incomplete: its continuation point —
			// the far side of the border — is now known reachable.
			a.noteCrossing(y)
		default:
			// A complete but non-full instance can only be the context
			// instance of a zero-length path.
			if a.pathLen == 0 && y.SL == 0 && y.SR == 0 {
				if a.addReachable(End{Step: 0, Node: y.NR}) {
					return y, true
				}
			}
		}
	}
}

// emitReachable processes one instance from the ready list per case 1 of
// Sec. 5.4.5.2: its right end becomes reachable; full paths are emitted.
func (a *XAssembly) emitReachable(x Instance) (Instance, bool) {
	if x.NRBorder {
		// Right-incomplete: reaching it means the far cluster's anchor is
		// reachable too; chain the merge and notify the scheduler.
		a.noteCrossing(x)
		return Instance{}, false
	}
	isNew := a.addReachable(End{Step: x.SR, Node: x.NR})
	if x.SR == a.pathLen && isNew {
		return x, true
	}
	return Instance{}, false
}

// noteCrossing handles a right-incomplete instance: the target of its
// border becomes a reachable continuation point, deduplicated via R so no
// inter-cluster edge is traversed twice for the same step (Sec. 5.3.3.3).
// The scheduler, if any, is told to visit the target cluster.
func (a *XAssembly) noteCrossing(p Instance) {
	target := a.targetOf(p)
	e := End{Step: p.SR, Node: target}
	if !a.addReachable(e) {
		return
	}
	if a.sched != nil {
		cont := Instance{Path: p.Path, SL: p.SL, NL: p.NL, NLBorder: p.NLBorder, SR: p.SR, NR: target, NRBorder: true}
		a.sched.Enqueue(cont)
	}
}

// targetOf resolves target(N_R(p)) for a border-ended instance. XStep
// captured the companion NodeID while the border's cluster was loaded, so
// this never performs I/O.
func (a *XAssembly) targetOf(p Instance) storage.NodeID {
	if p.TargetR != 0 {
		return p.TargetR
	}
	if p.curSet {
		return p.cur.Target()
	}
	return a.es.Store.Swizzle(p.NR).Target()
}

// park stores a speculative instance in S, enforcing the memory limit of
// Sec. 5.4.6.
func (a *XAssembly) park(x Instance) {
	e := x.EndL()
	if a.reachable(e) {
		a.ready = append(a.ready, x)
		return
	}
	a.es.chargeSetOp(1)
	stats.Inc(&a.es.ledger().SetInserts)
	lst, ok := a.s[e]
	if !ok {
		lst = a.es.Arena.takeInsts()
	}
	a.s[e] = append(lst, x)
	a.sLen++
	if a.es.MemLimit > 0 && a.sLen > a.es.MemLimit {
		// Memory exhausted: discard S and degrade the whole plan.
		a.es.Arena.putEndInsts(a.s)
		a.s = a.es.Arena.takeEndInsts()
		a.sLen = 0
		a.ready = a.ready[:0]
		a.es.EnterFallback()
		if f, ok := a.input.(fallbackAware); ok {
			f.enterFallback()
		}
	}
}

// SLen exposes the current size of S (tests, memory accounting).
func (a *XAssembly) SLen() int { return a.sLen }

// RLen exposes the current size of R.
func (a *XAssembly) RLen() int { return len(a.r) }

// fallbackAware is implemented by operators that must react when the plan
// degrades (XScan restarts its producer).
type fallbackAware interface {
	enterFallback()
}
