// Package storage implements the paged tree storage engine underneath the
// path algebra: slotted pages holding node records, subtree partitioning
// into clusters with explicit border (proxy) nodes at inter-cluster edges
// (Sec. 3.2–3.4 of the paper), NodeIDs from which the owning cluster is
// derivable, swizzled in-memory page images (Sec. 3.6), and the
// intra-cluster navigation primitives the XStep operator requires
// (Sec. 3.5).
package storage

import (
	"fmt"

	"pathdb/internal/vdisk"
)

// NodeID identifies a stored node: a record ID in the classic
// (page, slot) form of Example 2, plus an attribute index so attribute
// nodes, which live inside their element's record, are addressable too.
//
// Layout: page (32 bits) | slot (16 bits) | attr (16 bits), where attr 0
// addresses the record itself and attr i addresses attribute i-1.
//
// The cluster a node belongs to is its page — exactly the "cluster
// deducible from the NodeID" requirement of Sec. 3.3.
type NodeID uint64

// InvalidNodeID is the nil NodeID.
const InvalidNodeID NodeID = ^NodeID(0)

// MakeNodeID builds the NodeID of the record at (page, slot).
func MakeNodeID(page vdisk.PageID, slot uint16) NodeID {
	return NodeID(uint64(page)<<32 | uint64(slot)<<16)
}

// Page returns the page (= cluster) component.
func (id NodeID) Page() vdisk.PageID { return vdisk.PageID(id >> 32) }

// Slot returns the slot component.
func (id NodeID) Slot() uint16 { return uint16(id >> 16) }

// AttrIndex returns the attribute index and whether the id addresses an
// attribute node.
func (id NodeID) AttrIndex() (int, bool) {
	a := uint16(id)
	if a == 0 {
		return 0, false
	}
	return int(a) - 1, true
}

// WithAttr returns the NodeID of the i-th attribute of this record.
func (id NodeID) WithAttr(i int) NodeID {
	return id&^NodeID(0xFFFF) | NodeID(uint16(i)+1)
}

// WithoutAttr strips the attribute component.
func (id NodeID) WithoutAttr() NodeID { return id &^ NodeID(0xFFFF) }

// String renders the id as page.slot[@attr].
func (id NodeID) String() string {
	if id == InvalidNodeID {
		return "invalid"
	}
	if a, ok := id.AttrIndex(); ok {
		return fmt.Sprintf("%d.%d@%d", id.Page(), id.Slot(), a)
	}
	return fmt.Sprintf("%d.%d", id.Page(), id.Slot())
}
