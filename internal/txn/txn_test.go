package txn

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"pathdb/internal/stats"
	"pathdb/internal/storage"
	"pathdb/internal/vdisk"
	"pathdb/internal/xmltree"
	"pathdb/internal/xpath"
)

// fixture imports a small document and returns the store plus the root
// element's NodeID (the insertion parent for the tests).
func fixture(t testing.TB, pageSize int) (*storage.Store, *xmltree.Dictionary, storage.NodeID) {
	t.Helper()
	dict := xmltree.NewDictionary()
	b := xmltree.NewBuilder(dict)
	b.Begin("root")
	for i := 0; i < 10; i++ {
		b.Leaf("x", strings.Repeat("d", 24))
	}
	b.End()
	disk := vdisk.New(vdisk.DefaultCostModel(), stats.NewLedger(), pageSize)
	st, err := storage.Import(disk, dict, b.Doc(), storage.ImportOptions{PageSize: pageSize, Layout: storage.LayoutContiguous, Seed: 7})
	if err != nil {
		t.Fatalf("Import: %v", err)
	}
	root := rootElem(t, st)
	return st, dict, root
}

func rootElem(t testing.TB, st *storage.Store) storage.NodeID {
	t.Helper()
	c, ok := st.Step(st.Swizzle(st.Root()), xpath.Child, xpath.Wildcard()).Next()
	if !ok {
		t.Fatal("no root element")
	}
	return c.ID()
}

// insFrag builds <ins>v{i}</ins>. The tag must be pre-interned (the
// dictionary is not safe for concurrent interning).
func insFrag(tag xmltree.TagID, i int) *xmltree.Node {
	e := xmltree.NewElement(tag)
	e.AppendChild(xmltree.NewText(fmt.Sprintf("v%d", i)))
	return e
}

func commitOne(m *Manager, root storage.NodeID, tag xmltree.TagID, i int) error {
	return m.Update(func(tx *Tx) error {
		_, err := tx.InsertSubtree(root, storage.InvalidNodeID, insFrag(tag, i))
		return err
	})
}

func countIns(m *Manager, tag xmltree.TagID) int {
	snap := m.Snapshot()
	defer snap.Release()
	return snap.View(stats.NewLedger()).Export().CountTag(tag)
}

// insTexts returns the text of every <ins> element in document order.
func insTexts(doc *xmltree.Node, tag xmltree.TagID) []string {
	var out []string
	doc.Walk(func(n *xmltree.Node) bool {
		if n.Kind == xmltree.Element && n.Tag == tag {
			out = append(out, n.TextContent())
		}
		return true
	})
	return out
}

func TestUpdateCommitVisible(t *testing.T) {
	st, dict, root := fixture(t, 512)
	m, err := NewManager(st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ins := dict.Intern("ins")
	for i := 0; i < 3; i++ {
		if err := commitOne(m, root, ins, i); err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
	}
	if got := countIns(m, ins); got != 3 {
		t.Fatalf("ins after 3 commits = %d, want 3", got)
	}
	mt := m.Metrics()
	if mt.Commits != 3 || mt.Epoch != 3 {
		t.Fatalf("metrics = %+v, want 3 commits at epoch 3", mt)
	}
}

func TestLegacyUpdateRefusedAfterAdoption(t *testing.T) {
	st, dict, root := fixture(t, 512)
	if _, err := NewManager(st, Options{}); err != nil {
		t.Fatal(err)
	}
	_, err := st.InsertSubtree(root, storage.InvalidNodeID, insFrag(dict.Intern("ins"), 0))
	if !errors.Is(err, storage.ErrLegacyUpdate) {
		t.Fatalf("legacy InsertSubtree on adopted volume: err = %v, want ErrLegacyUpdate", err)
	}
}

func TestSnapshotIsolation(t *testing.T) {
	st, dict, root := fixture(t, 512)
	m, err := NewManager(st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ins := dict.Intern("ins")

	old := m.Snapshot() // pinned before any commit
	for i := 0; i < 5; i++ {
		if err := commitOne(m, root, ins, i); err != nil {
			t.Fatal(err)
		}
	}
	if got := old.View(stats.NewLedger()).Export().CountTag(ins); got != 0 {
		t.Fatalf("pre-commit snapshot sees %d inserts, want 0", got)
	}
	if got := countIns(m, ins); got != 5 {
		t.Fatalf("fresh snapshot sees %d inserts, want 5", got)
	}
	if p := m.Metrics().Pinned; p != 1 {
		t.Fatalf("pinned = %d, want 1", p)
	}
	old.Release()
	old.Release() // idempotent
	if p := m.Metrics().Pinned; p != 0 {
		t.Fatalf("pinned after release = %d, want 0", p)
	}
}

func TestAbortRollsBack(t *testing.T) {
	st, dict, root := fixture(t, 512)
	m, err := NewManager(st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ins := dict.Intern("ins")
	sentinel := errors.New("boom")
	err = m.Update(func(tx *Tx) error {
		if _, err := tx.InsertSubtree(root, storage.InvalidNodeID, insFrag(ins, 0)); err != nil {
			return err
		}
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("Update returned %v, want the callback error", err)
	}
	if got := countIns(m, ins); got != 0 {
		t.Fatalf("aborted insert visible: count = %d", got)
	}
	// A read-only transaction commits nothing and bumps no epoch.
	if err := m.Update(func(tx *Tx) error { return nil }); err != nil {
		t.Fatal(err)
	}
	mt := m.Metrics()
	if mt.Aborts != 1 || mt.Commits != 0 || mt.Epoch != 0 {
		t.Fatalf("metrics = %+v, want 1 abort, 0 commits, epoch 0", mt)
	}
}

func TestUpdateAfterClose(t *testing.T) {
	st, _, _ := fixture(t, 512)
	m, err := NewManager(st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m.Close()
	if err := m.Update(func(tx *Tx) error { return nil }); !errors.Is(err, ErrClosed) {
		t.Fatalf("Update after Close: %v, want ErrClosed", err)
	}
	m.Snapshot().Release() // reads keep working
}

// TestGroupCommitBatching drives concurrent writers and requires commits to
// share log flushes: mean flushes per commit strictly below one.
func TestGroupCommitBatching(t *testing.T) {
	st, dict, root := fixture(t, 1024)
	m, err := NewManager(st, Options{GroupWindow: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ins := dict.Intern("ins")

	const writers, perWriter = 4, 25
	var wg sync.WaitGroup
	errCh := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if err := commitOne(m, root, ins, w*1000+i); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	mt := m.Metrics()
	if mt.Commits != writers*perWriter {
		t.Fatalf("commits = %d, want %d", mt.Commits, writers*perWriter)
	}
	if fpc := mt.FlushesPerCommit(); fpc >= 1 {
		t.Fatalf("flushes per commit = %.2f (groups=%d flushes=%d), want < 1 with %d writers",
			fpc, mt.Groups, mt.Flushes, writers)
	}
	if mt.MaxGroup < 2 {
		t.Fatalf("max group = %d, want >= 2", mt.MaxGroup)
	}
	if got := countIns(m, ins); got != writers*perWriter {
		t.Fatalf("ins = %d, want %d", got, writers*perWriter)
	}
}

// TestConcurrentReadersWriters runs 8 readers against 2 writers. Because
// every commit inserts exactly one <ins> node and bumps the epoch by one,
// a snapshot is consistent iff its count equals its epoch — any torn read
// breaks the equality.
func TestConcurrentReadersWriters(t *testing.T) {
	st, dict, root := fixture(t, 512)
	m, err := NewManager(st, Options{GroupWindow: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ins := dict.Intern("ins")

	const writers, perWriter, readers = 2, 20, 8
	stop := make(chan struct{})
	errCh := make(chan error, readers+writers)

	var rg sync.WaitGroup
	for r := 0; r < readers; r++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := m.Snapshot()
				got := snap.View(stats.NewLedger()).Export().CountTag(ins)
				epoch := snap.Epoch()
				snap.Release()
				if uint64(got) != epoch {
					errCh <- fmt.Errorf("torn snapshot: count %d at epoch %d", got, epoch)
					return
				}
			}
		}()
	}

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if err := commitOne(m, root, ins, w*1000+i); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	rg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if got := countIns(m, ins); got != writers*perWriter {
		t.Fatalf("ins = %d, want %d", got, writers*perWriter)
	}
}

// TestCrashRecoveryMatrix arms the write-crash fault at every cut point in
// a commit sequence, reopens the volume, and checks the durability
// contract: the recovered document is an exact prefix of commit order that
// covers at least every hard-acked commit (acked while no write had been
// dropped yet). The recovered volume must also accept new transactions.
func TestCrashRecoveryMatrix(t *testing.T) {
	const commits = 8
	for cut := 0; cut <= 96; cut++ {
		st, dict, root := fixture(t, 512)
		ins := dict.Intern("ins")
		// No batching window and a tiny checkpoint interval: the sweep
		// crosses several checkpoints, so cuts land inside checkpoint
		// writes too.
		m, err := NewManager(st, Options{GroupWindow: -1, CheckpointEvery: 3})
		if err != nil {
			t.Fatalf("cut=%d: NewManager: %v", cut, err)
		}
		disk := st.Disk()
		base := disk.DroppedWrites()
		disk.SetWriteFault(cut)
		hard, done := 0, 0
		for i := 0; i < commits; i++ {
			if err := commitOne(m, root, ins, i); err != nil {
				// Past the cut the in-memory store reads pages whose
				// backing writes were dropped; the process has
				// effectively crashed, so stop issuing commits.
				break
			}
			done = i + 1
			if disk.DroppedWrites() == base {
				hard = i + 1
			}
		}
		disk.SetWriteFault(-1)

		st2, err := storage.Open(disk)
		if err != nil {
			t.Fatalf("cut=%d: recovery failed: %v", cut, err)
		}
		got := insTexts(st2.Export(), ins)
		if len(got) < hard || len(got) > done {
			t.Fatalf("cut=%d: recovered %d commits, want between %d (hard-acked) and %d (issued)", cut, len(got), hard, done)
		}
		for i, s := range got {
			if want := fmt.Sprintf("v%d", i); s != want {
				t.Fatalf("cut=%d: recovered state is not a prefix: ins[%d] = %q, want %q (all: %v)", cut, i, s, want, got)
			}
		}

		// The recovered volume is writable: commit once more and verify.
		m2, err := NewManager(st2, Options{GroupWindow: -1})
		if err != nil {
			t.Fatalf("cut=%d: reopen manager: %v", cut, err)
		}
		if err := commitOne(m2, rootElem(t, st2), ins, 100); err != nil {
			t.Fatalf("cut=%d: post-recovery commit: %v", cut, err)
		}
		if n := countIns(m2, ins); n != len(got)+1 {
			t.Fatalf("cut=%d: post-recovery count = %d, want %d", cut, n, len(got)+1)
		}
	}
}

// TestReclaimBoundsGrowth checks that superseded page versions are recycled:
// a long insert+delete churn must not grow the volume linearly.
func TestReclaimBoundsGrowth(t *testing.T) {
	st, dict, root := fixture(t, 512)
	m, err := NewManager(st, Options{GroupWindow: -1, CheckpointEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	ins := dict.Intern("ins")
	disk := st.Disk()

	prev := storage.InvalidNodeID
	var warm int
	for i := 0; i < 60; i++ {
		i := i
		err := m.Update(func(tx *Tx) error {
			id, err := tx.InsertSubtree(root, storage.InvalidNodeID, insFrag(ins, i))
			if err != nil {
				return err
			}
			if prev != storage.InvalidNodeID {
				if err := tx.DeleteSubtree(prev); err != nil {
					return err
				}
			}
			prev = id
			return nil
		})
		if err != nil {
			t.Fatalf("churn %d: %v", i, err)
		}
		if i == 9 {
			warm = disk.NumPages()
		}
	}
	if got := countIns(m, ins); got != 1 {
		t.Fatalf("ins after churn = %d, want 1", got)
	}
	grow := disk.NumPages() - warm
	if grow > 50 {
		t.Fatalf("volume grew by %d pages over 50 steady-state commits; reclamation is not recycling", grow)
	}
}
