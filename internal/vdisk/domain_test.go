package vdisk

import (
	"sync"
	"testing"

	"pathdb/internal/stats"
)

func newTestDisk(t *testing.T, pages int) *Disk {
	t.Helper()
	d := New(DefaultCostModel(), stats.NewLedger(), 64)
	buf := make([]byte, 64)
	for i := 0; i < pages; i++ {
		p := d.Alloc()
		buf[0] = byte(i)
		d.Write(p, buf)
	}
	d.Ledger().Reset()
	d.ResetClockState()
	return d
}

// TestDomainsIndependentClocks: two domains sharing one device each see
// their own completions on their own clocks, and both pay real device time.
func TestDomainsIndependentClocks(t *testing.T) {
	d := newTestDisk(t, 16)
	ledA, ledB := stats.NewLedger(), stats.NewLedger()
	a, b := d.NewDomain(ledA), d.NewDomain(ledB)

	a.Submit(2)
	a.Submit(4)
	b.Submit(9)
	b.Submit(11)

	buf := make([]byte, 64)
	gotA := map[PageID]bool{}
	for {
		p, ok, _ := a.WaitAny(buf)
		if !ok {
			break
		}
		if buf[0] != byte(p) {
			t.Fatalf("domain A: page %d delivered wrong data %d", p, buf[0])
		}
		gotA[p] = true
	}
	if !gotA[2] || !gotA[4] || len(gotA) != 2 {
		t.Fatalf("domain A completions = %v, want {2,4}", gotA)
	}
	if ledA.Total() == 0 || ledA.PageReads != 2 {
		t.Fatalf("domain A ledger: total=%v reads=%d", ledA.Total(), ledA.PageReads)
	}

	gotB := map[PageID]bool{}
	for {
		p, ok, _ := b.WaitAny(buf)
		if !ok {
			break
		}
		gotB[p] = true
	}
	if !gotB[9] || !gotB[11] || len(gotB) != 2 {
		t.Fatalf("domain B completions = %v, want {9,11}", gotB)
	}
	// B's requests were serviced while A drained the device (shared head),
	// so B's reads were already charged to B's ledger.
	if ledB.PageReads != 2 {
		t.Fatalf("domain B reads = %d, want 2", ledB.PageReads)
	}
	// The root domain saw none of this.
	if d.Ledger().PageReads != 0 || d.PendingAsync() != 0 {
		t.Fatalf("root domain contaminated: reads=%d pending=%d",
			d.Ledger().PageReads, d.PendingAsync())
	}
}

// TestDomainWaitDoesNotStealRoot: a root WaitAny must not deliver a
// domain's completion and vice versa.
func TestDomainWaitDoesNotStealRoot(t *testing.T) {
	d := newTestDisk(t, 8)
	dom := d.NewDomain(stats.NewLedger())
	buf := make([]byte, 64)

	dom.Submit(3)
	if _, ok, _ := d.WaitAny(buf); ok {
		t.Fatal("root WaitAny delivered a domain request")
	}
	d.Submit(5)
	p, ok, _ := dom.WaitAny(buf)
	if !ok || p != 3 {
		t.Fatalf("domain WaitAny = %v,%v, want 3,true", p, ok)
	}
	p, ok, _ = d.WaitAny(buf)
	if !ok || p != 5 {
		t.Fatalf("root WaitAny = %v,%v, want 5,true", p, ok)
	}
}

func TestDomainCancelPending(t *testing.T) {
	d := newTestDisk(t, 8)
	dom := d.NewDomain(stats.NewLedger())
	buf := make([]byte, 64)

	dom.Submit(1)
	dom.Submit(2)
	d.Submit(6)
	if dom.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", dom.Pending())
	}
	dom.CancelPending()
	if dom.Pending() != 0 {
		t.Fatal("CancelPending left requests behind")
	}
	if _, ok, _ := dom.WaitAny(buf); ok {
		t.Fatal("cancelled request delivered")
	}
	// Root request survives the domain cancel.
	p, ok, _ := d.WaitAny(buf)
	if !ok || p != 6 {
		t.Fatalf("root request lost by domain cancel: %v,%v", p, ok)
	}
}

// TestConcurrentDiskAccess exercises the device mutex from many goroutines.
// The interleaving is nondeterministic; the assertions are structural
// (deliveries complete, data intact, counters add up) and -race does the
// rest.
func TestConcurrentDiskAccess(t *testing.T) {
	d := newTestDisk(t, 64)
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			dom := d.NewDomain(stats.NewLedger())
			buf := make([]byte, 64)
			for i := 0; i < 50; i++ {
				p := PageID((w*7 + i) % 64)
				dom.Submit(p)
				got, ok, _ := dom.WaitAny(buf)
				if !ok {
					t.Errorf("worker %d: lost request for page %d", w, p)
					return
				}
				if buf[0] != byte(got) {
					t.Errorf("worker %d: page %d carried data %d", w, got, buf[0])
					return
				}
			}
			if dom.Pending() != 0 {
				t.Errorf("worker %d: leftover pending", w)
			}
		}(w)
	}
	wg.Wait()
}
