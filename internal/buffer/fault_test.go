package buffer

import (
	"errors"
	"fmt"
	"testing"

	"pathdb/internal/stats"
	"pathdb/internal/vdisk"
)

// newFaultPool builds a pool over pages whose first byte is the page
// number, returning the disk for fault control.
func newFaultPool(t *testing.T, pages, capacity int) (*Manager, *vdisk.Disk) {
	t.Helper()
	d := vdisk.New(vdisk.DefaultCostModel(), stats.NewLedger(), 32)
	buf := make([]byte, 32)
	for i := 0; i < pages; i++ {
		p := d.Alloc()
		buf[0] = byte(i)
		d.Write(p, buf)
	}
	d.Ledger().Reset()
	d.ResetClockState()
	return New(d, capacity), d
}

func TestFixExhaustsRetriesOnPersistentError(t *testing.T) {
	m, d := newFaultPool(t, 8, 8)
	d.SetFaults(vdisk.Faults{Seed: 1, ReadError: 1})
	_, err := m.Fix(3)
	if err == nil {
		t.Fatal("Fix succeeded under ReadError=1")
	}
	var re *vdisk.ReadError
	if !errors.As(err, &re) || re.Page != 3 {
		t.Fatalf("error %v does not carry the failing page", err)
	}
	led := d.Ledger()
	if led.ReadFaults != int64(m.retry.Attempts) {
		t.Fatalf("ReadFaults = %d, want %d (one per attempt)", led.ReadFaults, m.retry.Attempts)
	}
	if led.ReadRetries != int64(m.retry.Attempts-1) {
		t.Fatalf("ReadRetries = %d, want %d", led.ReadRetries, m.retry.Attempts-1)
	}

	// The failure is not sticky: disarm and the same Fix succeeds.
	d.SetFaults(vdisk.Faults{})
	f, err := m.Fix(3)
	if err != nil || f.Data[0] != 3 {
		t.Fatalf("Fix after disarm: err=%v data=%v", err, f.Data[:1])
	}
	m.Unfix(f)
}

func TestFixRetryRecoversTransientFaults(t *testing.T) {
	const pages = 64
	m, d := newFaultPool(t, pages, pages)
	d.SetFaults(vdisk.Faults{Seed: 9, ReadError: 0.3})
	failed := 0
	for i := 0; i < pages; i++ {
		f, err := m.Fix(vdisk.PageID(i))
		if err != nil {
			failed++
			continue
		}
		if f.Data[0] != byte(i) {
			t.Fatalf("page %d holds data %d", i, f.Data[0])
		}
		m.Unfix(f)
	}
	// P(all 4 attempts fail) = 0.3^4 < 1%; nearly every Fix must recover.
	if failed > pages/8 {
		t.Fatalf("%d/%d fixes failed despite retry", failed, pages)
	}
	if d.Ledger().ReadRetries == 0 {
		t.Fatal("no retries recorded at a 30% fault rate")
	}
}

func TestFixVerifierEscalatesCorruption(t *testing.T) {
	m, d := newFaultPool(t, 8, 8)
	wantErr := fmt.Errorf("checksum mismatch")
	m.SetVerifier(func(p vdisk.PageID, data []byte) error {
		if data[0] != byte(p) {
			return wantErr
		}
		for _, b := range data[1:] {
			if b != 0 {
				return wantErr
			}
		}
		return nil
	})
	d.CorruptPage(5, 42) // persistent medium damage at offset < 16
	if f, err := m.Fix(4); err != nil || f.Data[0] != 4 {
		t.Fatalf("intact page failed verification: %v", err)
	} else {
		m.Unfix(f)
	}
	_, err := m.Fix(5)
	if !errors.Is(err, wantErr) {
		t.Fatalf("Fix(5) = %v, want verifier error", err)
	}
	if got := d.Ledger().ChecksumFails; got != int64(m.retry.Attempts) {
		t.Fatalf("ChecksumFails = %d, want %d", got, m.retry.Attempts)
	}
}

func TestWaiterPoisonFanout(t *testing.T) {
	m, d := newFaultPool(t, 8, 8)
	d.SetFaults(vdisk.Faults{Seed: 2, ReadError: 1})

	led1, led2 := stats.NewLedger(), stats.NewLedger()
	w1, w2 := m.NewWaiter(led1), m.NewWaiter(led2)
	w1.Request(6)
	w2.Request(6)

	p, ok, err := w1.WaitLoaded()
	if !ok || err == nil || p != 6 {
		t.Fatalf("w1.WaitLoaded = (%v, %v, %v), want page 6 with error", p, ok, err)
	}
	p, ok, err2 := w2.WaitLoaded()
	if !ok || err2 == nil || p != 6 {
		t.Fatalf("w2.WaitLoaded = (%v, %v, %v), want page 6 with the same poison", p, ok, err2)
	}
	// Both waiters consumed the poison entry; the failure must not be
	// sticky for future requests.
	d.SetFaults(vdisk.Faults{})
	w1.Request(6)
	p, ok, err = w1.WaitLoaded()
	if !ok || err != nil || p != 6 {
		t.Fatalf("post-disarm WaitLoaded = (%v, %v, %v), want clean delivery", p, ok, err)
	}
	f := fix(m, 6)
	if f.Data[0] != 6 {
		t.Fatalf("page 6 holds data %d", f.Data[0])
	}
	m.Unfix(f)
	if led1.ReadRetries == 0 {
		t.Fatal("driving waiter recorded no retries")
	}
}
