// Package xpath models XPath location paths: axes, node tests, steps, and
// a parser for the abbreviated and verbose syntaxes.
//
// As in Sec. 4.1 of the paper, node tests are sets of allowed tags (plus a
// kind constraint); this covers the location-path fragment the physical
// algebra evaluates. Predicates and other XPath constructs are out of
// scope, exactly as in the paper ("our physical algebra expressions can be
// incorporated into a more expressive algebra").
package xpath

import (
	"fmt"
	"strings"

	"pathdb/internal/xmltree"
)

// Axis enumerates the supported XPath axes.
type Axis uint8

// Supported axes. Following and preceding (full document-order axes) are
// not implemented; the paper's evaluation needs child and
// descendant(-or-self) only.
const (
	Self Axis = iota
	Child
	Descendant
	DescendantOrSelf
	Parent
	Ancestor
	AncestorOrSelf
	FollowingSibling
	PrecedingSibling
	AttributeAxis
)

var axisNames = map[Axis]string{
	Self:             "self",
	Child:            "child",
	Descendant:       "descendant",
	DescendantOrSelf: "descendant-or-self",
	Parent:           "parent",
	Ancestor:         "ancestor",
	AncestorOrSelf:   "ancestor-or-self",
	FollowingSibling: "following-sibling",
	PrecedingSibling: "preceding-sibling",
	AttributeAxis:    "attribute",
}

// String returns the XPath name of the axis.
func (a Axis) String() string {
	if s, ok := axisNames[a]; ok {
		return s
	}
	return fmt.Sprintf("axis(%d)", uint8(a))
}

// Reverse reports whether the axis runs against document order.
func (a Axis) Reverse() bool {
	switch a {
	case Parent, Ancestor, AncestorOrSelf, PrecedingSibling:
		return true
	}
	return false
}

// KindTest constrains the node kind a test accepts.
type KindTest uint8

// Kind tests.
const (
	KindAny     KindTest = iota // node()
	KindElement                 // name tests and *
	KindText                    // text()
	KindComment                 // comment()
	KindPI                      // processing-instruction()
)

// NodeTest is the paper's node test: a kind constraint plus a tag subset of
// the alphabet Σ. The zero value matches nothing; construct via the helper
// functions.
type NodeTest struct {
	Kind    KindTest
	AnyName bool            // ignore the tag (for *, node(), text(), …)
	Tags    []xmltree.TagID // allowed tags when !AnyName; small sorted set
}

// NameTest matches elements with exactly the given tag.
func NameTest(tag xmltree.TagID) NodeTest {
	return NodeTest{Kind: KindElement, Tags: []xmltree.TagID{tag}}
}

// NameSetTest matches elements with any of the given tags — the general
// "subset of Σ" form of the paper's model.
func NameSetTest(tags ...xmltree.TagID) NodeTest {
	out := NodeTest{Kind: KindElement, Tags: append([]xmltree.TagID(nil), tags...)}
	for i := 1; i < len(out.Tags); i++ {
		for j := i; j > 0 && out.Tags[j-1] > out.Tags[j]; j-- {
			out.Tags[j-1], out.Tags[j] = out.Tags[j], out.Tags[j-1]
		}
	}
	return out
}

// Wildcard matches every element (*).
func Wildcard() NodeTest { return NodeTest{Kind: KindElement, AnyName: true} }

// AnyNode matches every node (node()).
func AnyNode() NodeTest { return NodeTest{Kind: KindAny, AnyName: true} }

// TextTest matches text nodes (text()).
func TextTest() NodeTest { return NodeTest{Kind: KindText, AnyName: true} }

// CommentTest matches comment nodes (comment()).
func CommentTest() NodeTest { return NodeTest{Kind: KindComment, AnyName: true} }

// PITest matches processing instructions.
func PITest() NodeTest { return NodeTest{Kind: KindPI, AnyName: true} }

// Matches reports whether a node of the given kind and tag passes the test.
func (nt NodeTest) Matches(kind xmltree.Kind, tag xmltree.TagID) bool {
	switch nt.Kind {
	case KindAny:
		// node() matches everything except attributes on non-attribute axes;
		// axis semantics handle that, the test itself accepts all kinds.
	case KindElement:
		if kind != xmltree.Element && kind != xmltree.Attribute {
			return false
		}
	case KindText:
		return kind == xmltree.Text
	case KindComment:
		return kind == xmltree.Comment
	case KindPI:
		return kind == xmltree.ProcInst
	}
	if nt.AnyName {
		return true
	}
	for _, t := range nt.Tags {
		if t == tag {
			return true
		}
	}
	return false
}

// String renders the test in XPath syntax given the dictionary.
func (nt NodeTest) Render(dict *xmltree.Dictionary) string {
	switch nt.Kind {
	case KindAny:
		return "node()"
	case KindText:
		return "text()"
	case KindComment:
		return "comment()"
	case KindPI:
		return "processing-instruction()"
	}
	if nt.AnyName {
		return "*"
	}
	parts := make([]string, len(nt.Tags))
	for i, t := range nt.Tags {
		parts[i] = dict.Name(t)
	}
	return strings.Join(parts, "|")
}

// Predicate is an existence predicate on a step: a union of nested
// relative location paths, optionally compared against a string literal
// (true when any branch yields a node whose string-value matches). This is
// the "nested paths in predicates" case of the paper's outlook (Sec. 7);
// see core.PredFilter for how it is evaluated physically.
type Predicate struct {
	Paths   []*Path // union branches (at least one)
	Literal string  // comparison value when HasLit
	HasLit  bool
}

// Render writes the predicate in XPath syntax. Literals are quoted raw
// (XPath 1.0 has no escape sequences); the delimiter is chosen to avoid
// the literal's own quote character — a parsed literal can never contain
// both kinds.
func (p Predicate) Render(dict *xmltree.Dictionary) string {
	parts := make([]string, len(p.Paths))
	for i, b := range p.Paths {
		parts[i] = b.Render(dict)
	}
	s := strings.Join(parts, "|")
	if p.HasLit {
		q := `"`
		if strings.Contains(p.Literal, `"`) {
			q = "'"
		}
		s += "=" + q + p.Literal + q
	}
	return s
}

// Step is one location step: axis plus node test plus predicates.
type Step struct {
	Axis       Axis
	Test       NodeTest
	Predicates []Predicate
}

// Render writes the step in verbose XPath syntax.
func (s Step) Render(dict *xmltree.Dictionary) string {
	out := s.Axis.String() + "::" + s.Test.Render(dict)
	for _, p := range s.Predicates {
		out += "[" + p.Render(dict) + "]"
	}
	return out
}

// HasPredicates reports whether any of the steps carries a predicate —
// the gate callers use to spare predicate-free queries a join-vs-nested
// cost consultation.
func HasPredicates(steps []Step) bool {
	for _, s := range steps {
		if len(s.Predicates) > 0 {
			return true
		}
	}
	return false
}

// Path is a location path. Absolute paths start at the document root;
// relative paths start at an externally supplied context node sequence.
type Path struct {
	Absolute bool
	Steps    []Step
}

// Len returns |π|, the number of location steps.
func (p *Path) Len() int { return len(p.Steps) }

// Render writes the path in verbose XPath syntax.
func (p *Path) Render(dict *xmltree.Dictionary) string {
	var b strings.Builder
	if p.Absolute {
		b.WriteString("/")
	}
	for i, s := range p.Steps {
		if i > 0 {
			b.WriteString("/")
		}
		b.WriteString(s.Render(dict))
	}
	return b.String()
}

// Simplify applies the classic logical rewrite
// descendant-or-self::node()/child::T  =>  descendant::T,
// which shortens '//'-style paths by one step without changing results.
// It returns a new Path; the receiver is unchanged. This is the kind of
// orthogonal logical optimization the paper's requirement 4 asks the
// physical layer to interoperate with.
func (p *Path) Simplify() *Path {
	return &Path{Absolute: p.Absolute, Steps: simplifySteps(p.Steps)}
}

func simplifySteps(steps []Step) []Step {
	var out []Step
	for i := 0; i < len(steps); i++ {
		s := steps[i]
		if s.Axis == DescendantOrSelf && s.Test.Kind == KindAny && len(s.Predicates) == 0 &&
			i+1 < len(steps) && steps[i+1].Axis == Child {
			out = append(out, Step{
				Axis:       Descendant,
				Test:       steps[i+1].Test,
				Predicates: simplifyPredicates(steps[i+1].Predicates),
			})
			i++
			continue
		}
		s.Predicates = simplifyPredicates(s.Predicates)
		out = append(out, s)
	}
	return out
}

// simplifyPredicates applies the rewrite inside predicate branches — the
// [.//a]-style recursion the parser accepts desugars to descendant steps
// the same way top-level '//' does. Returns fresh slices; the input is
// never mutated.
func simplifyPredicates(preds []Predicate) []Predicate {
	if len(preds) == 0 {
		return nil
	}
	out := make([]Predicate, len(preds))
	for i, pr := range preds {
		np := Predicate{Literal: pr.Literal, HasLit: pr.HasLit}
		np.Paths = make([]*Path, len(pr.Paths))
		for j, b := range pr.Paths {
			np.Paths[j] = b.Simplify()
		}
		out[i] = np
	}
	return out
}
