package pathdb

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"pathdb/internal/storage"
)

// diffPaths exercises every supported axis and node-test kind: the
// benchmark queries (Q6', the Q7 family, Q15) plus steps that force the
// reverse axes, sibling axes, wildcard, attribute, and kind tests through
// both the bitmap-batched and the per-node navigation paths.
var diffPaths = []string{
	"/site/regions//item", // Q6'
	"/site//description",  // Q7
	"/site//annotation",   // Q7
	"/site//emailaddress", // Q7
	"/site/closed_auctions/closed_auction/annotation/description/parlist/listitem/parlist/listitem/text/emph/keyword", // Q15
	"/site/regions/*",                                   // wildcard child
	"/site/regions/europe/item/@id",                     // attribute axis
	"/site//keyword/ancestor::listitem",                 // ancestor
	"/site//parlist/ancestor-or-self::*",                // ancestor-or-self + wildcard
	"/site//parlist/parent::description",                // parent
	"/site/regions/europe/item/following-sibling::item", // following-sibling
	"/site/regions/europe/item/preceding-sibling::*",    // preceding-sibling
	"/site//description/self::description",              // self
	"/site//emph/text()",                                // text() kind test
	"/site/people/person/node()",                        // node() kind test
	"/site/regions/europe/item/descendant::keyword",     // verbose descendant
	"/site/open_auctions/open_auction//node()",          // descendant-or-self + node()
}

// fingerprint runs path with the given strategy and returns a byte-exact
// rendition of the sorted result set (node identity, document order
// position, and name per line).
func fingerprint(t *testing.T, db *DB, path string, strat Strategy) string {
	t.Helper()
	res, err := db.QueryCtx(context.Background(), path, QueryOptions{Sorted: true, Strategy: strat})
	if err != nil {
		t.Fatalf("%s [%v]: %v", path, strat, err)
	}
	var b strings.Builder
	for _, n := range res.Nodes {
		fmt.Fprintf(&b, "%d|%s|%s\n", n.ID(), n.OrdPath(), n.Name())
	}
	return b.String()
}

// snapshotAll fingerprints every differential path under both physical
// strategies with bitmap navigation forced to the given setting.
func snapshotAll(t *testing.T, db *DB, bitmaps bool) map[string]string {
	t.Helper()
	storage.EnableBitmapNav(bitmaps)
	defer storage.EnableBitmapNav(true)
	out := make(map[string]string, 2*len(diffPaths))
	for _, p := range diffPaths {
		out[p+"#simple"] = fingerprint(t, db, p, Simple)
		out[p+"#schedule"] = fingerprint(t, db, p, Schedule)
	}
	return out
}

// TestBitmapNavDifferential pins the tentpole's correctness contract: the
// cluster-resident name-test bitmaps (batched navigation plus cluster
// skipping) must be a pure optimization. For every axis and node-test
// kind, under both physical strategies, the result set with bitmaps
// enabled is byte-identical to the per-node reference path — on the
// freshly loaded volume, and again after a batch of mixed writes has
// rewritten clusters and invalidated synopses.
func TestBitmapNavDifferential(t *testing.T) {
	db := engineFixture(t)

	compare := func(label string) {
		t.Helper()
		ref := snapshotAll(t, db, false)
		got := snapshotAll(t, db, true)
		nonEmpty := 0
		for key, want := range ref {
			if got[key] != want {
				t.Errorf("%s: %s diverges with bitmaps on:\nref %d bytes, got %d bytes",
					label, key, len(want), len(got[key]))
			}
			if want != "" {
				nonEmpty++
			}
		}
		if nonEmpty < len(ref)/2 {
			t.Fatalf("%s: only %d/%d differential queries matched nodes; fixture too small to be meaningful", label, nonEmpty, len(ref))
		}
	}

	compare("fresh volume")

	// Mixed writes: grow some clusters (insert), shrink others (delete),
	// across several commits so page epochs advance and synopses rebuild.
	regions := mustOne(t, db, "/site/regions")
	var probes []Node
	for i := 0; i < 3; i++ {
		err := db.Update(func(tx *Tx) error {
			n, err := tx.InsertXML(regions, fmt.Sprintf(
				`<probe round='%d'><description><keyword>delta</keyword></description></probe>`, i))
			if err != nil {
				return err
			}
			probes = append(probes, n)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Update(func(tx *Tx) error { return tx.Delete(probes[0]) }); err != nil {
		t.Fatal(err)
	}

	compare("after mixed writes")
}

// TestEpochCacheInvalidationDifferential pins the epoch-keyed decoded-
// cluster cache's invalidation contract: a query that warmed the cache
// must observe every later commit — the pre-commit and post-commit result
// sets differ by exactly the committed mutation, across several commits
// so the page epoch advances repeatedly. A stale cached decode would
// surface here as a missing (or resurrected) probe node.
func TestEpochCacheInvalidationDifferential(t *testing.T) {
	db := engineFixture(t)
	regions := mustOne(t, db, "/site/regions")

	const probePath = "/site/regions/epochprobe"
	const kwPath = "/site//keyword"
	baseKw := countPath(t, db, kwPath) // warms the decoded-cluster cache

	var probes []Node
	for round := 1; round <= 4; round++ {
		err := db.Update(func(tx *Tx) error {
			n, err := tx.InsertXML(regions, `<epochprobe><keyword>epoch</keyword></epochprobe>`)
			if err != nil {
				return err
			}
			probes = append(probes, n)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if got := countPath(t, db, probePath); got != round {
			t.Fatalf("after commit %d: %d probes visible, want %d (stale cached decode?)", round, got, round)
		}
		if got := countPath(t, db, kwPath); got != baseKw+round {
			t.Fatalf("after commit %d: keyword count %d, want %d", round, got, baseKw+round)
		}
	}

	// Deletes must invalidate just as precisely: each removal drops exactly
	// one probe from the visible set.
	for i, p := range probes {
		if err := db.Update(func(tx *Tx) error { return tx.Delete(p) }); err != nil {
			t.Fatal(err)
		}
		want := len(probes) - i - 1
		if got := countPath(t, db, probePath); got != want {
			t.Fatalf("after delete %d: %d probes visible, want %d", i+1, got, want)
		}
	}
	if got := countPath(t, db, kwPath); got != baseKw {
		t.Fatalf("after all deletes: keyword count %d, want %d", got, baseKw)
	}
}

// TestBitmapNavDifferentialUnderFaults re-runs the differential with the
// seeded fault plane armed: transient read errors and latency spikes must
// never make the bitmap path disagree with the per-node path. Terminal
// typed faults are retried (the schedule is seeded, so a retry draws new
// outcomes); a silent divergence fails the test.
func TestBitmapNavDifferentialUnderFaults(t *testing.T) {
	db := engineFixture(t)
	db.SetFaults(FaultConfig{Seed: 99, ReadError: 0.03, Latency: 0.05})
	defer db.SetFaults(FaultConfig{})

	faulty := func(path string, strat Strategy, bitmaps bool) string {
		t.Helper()
		storage.EnableBitmapNav(bitmaps)
		defer storage.EnableBitmapNav(true)
		for attempt := 0; ; attempt++ {
			res, err := db.QueryCtx(context.Background(), path, QueryOptions{Sorted: true, Strategy: strat})
			if err != nil {
				if attempt > 50 {
					t.Fatalf("%s: still faulting after %d attempts: %v", path, attempt, err)
				}
				continue
			}
			var b strings.Builder
			for _, n := range res.Nodes {
				fmt.Fprintf(&b, "%d|%s|%s\n", n.ID(), n.OrdPath(), n.Name())
			}
			return b.String()
		}
	}

	for _, p := range diffPaths {
		for _, strat := range []Strategy{Simple, Schedule} {
			ref := faulty(p, strat, false)
			got := faulty(p, strat, true)
			if got != ref {
				t.Errorf("%s [%v]: bitmap path diverges under faults (%d vs %d bytes)",
					p, strat, len(ref), len(got))
			}
		}
	}
}
