package xpath

import (
	"fmt"
	"strings"

	"pathdb/internal/xmltree"
)

// ParseError reports a syntax error with its byte offset in the input.
type ParseError struct {
	Pos int
	Msg string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("xpath: offset %d: %s", e.Pos, e.Msg)
}

// Parse parses a location path in (abbreviated or verbose) XPath syntax.
//
// Grammar:
//
//	path     = ("/" | "//")? step (("/" | "//") step)*
//	         | "/"                      (the document root itself)
//	step     = axis "::" nodetest | "@" nodetest | nodetest | "." | ".."
//	nodetest = NCName | "*" | "node()" | "text()" | "comment()"
//	         | "processing-instruction()"
//
// "//" abbreviates /descendant-or-self::node()/ as usual. Tag names are
// interned into dict so the resulting tests are integer comparisons.
func Parse(dict *xmltree.Dictionary, src string) (*Path, error) {
	p := &pathParser{dict: dict, src: src}
	path, err := p.parse("")
	if err != nil {
		return nil, err
	}
	p.skipWS()
	if !p.eof() {
		return nil, p.errf("unexpected %q", p.src[p.pos:])
	}
	return path, nil
}

// MustParse is Parse, panicking on error; for tests and fixed queries.
func MustParse(dict *xmltree.Dictionary, src string) *Path {
	path, err := Parse(dict, src)
	if err != nil {
		panic(err)
	}
	return path
}

type pathParser struct {
	dict *xmltree.Dictionary
	src  string
	pos  int
}

func (p *pathParser) errf(format string, args ...any) error {
	return &ParseError{Pos: p.pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *pathParser) eof() bool { return p.pos >= len(p.src) }

func (p *pathParser) skipWS() {
	for !p.eof() && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t') {
		p.pos++
	}
}

func (p *pathParser) consume(s string) bool {
	if strings.HasPrefix(p.src[p.pos:], s) {
		p.pos += len(s)
		return true
	}
	return false
}

// parse reads a path until EOF or one of the stop characters.
func (p *pathParser) parse(stops string) (*Path, error) {
	p.skipWS()
	if p.eof() {
		return nil, p.errf("empty path")
	}
	path := &Path{}
	switch {
	case p.consume("//"):
		path.Absolute = true
		path.Steps = append(path.Steps, Step{Axis: DescendantOrSelf, Test: AnyNode()})
	case p.consume("/"):
		path.Absolute = true
		p.skipWS()
		if p.eof() {
			return path, nil // "/" selects the document root
		}
	}
	for {
		steps, err := p.parseStep()
		if err != nil {
			return nil, err
		}
		path.Steps = append(path.Steps, steps...)
		p.skipWS()
		if p.eof() || (!p.eof() && strings.IndexByte(stops, p.src[p.pos]) >= 0) {
			return path, nil
		}
		switch {
		case p.consume("//"):
			path.Steps = append(path.Steps, Step{Axis: DescendantOrSelf, Test: AnyNode()})
		case p.consume("/"):
		default:
			return nil, p.errf("unexpected %q", p.src[p.pos:])
		}
	}
}

// parsePredicates reads zero or more [..] predicates and attaches them to
// the last step of steps.
func (p *pathParser) parsePredicates(steps []Step) ([]Step, error) {
	for {
		p.skipWS()
		if p.eof() || p.src[p.pos] != '[' {
			return steps, nil
		}
		p.pos++
		var branches []*Path
		for {
			nested, err := p.parse("]=|")
			if err != nil {
				return nil, err
			}
			if nested.Absolute {
				return nil, p.errf("absolute path inside predicate")
			}
			branches = append(branches, nested)
			p.skipWS()
			if !p.eof() && p.src[p.pos] == '|' {
				p.pos++
				continue
			}
			break
		}
		pred := Predicate{Paths: branches}
		p.skipWS()
		if !p.eof() && p.src[p.pos] == '=' {
			p.pos++
			lit, err := p.parseLiteral()
			if err != nil {
				return nil, err
			}
			pred.Literal = lit
			pred.HasLit = true
			p.skipWS()
		}
		if p.eof() || p.src[p.pos] != ']' {
			return nil, p.errf("unterminated predicate")
		}
		p.pos++
		last := &steps[len(steps)-1]
		last.Predicates = append(last.Predicates, pred)
	}
}

// parseLiteral reads a single- or double-quoted string.
func (p *pathParser) parseLiteral() (string, error) {
	p.skipWS()
	if p.eof() || (p.src[p.pos] != '"' && p.src[p.pos] != '\'') {
		return "", p.errf("expected string literal")
	}
	quote := p.src[p.pos]
	p.pos++
	start := p.pos
	for !p.eof() && p.src[p.pos] != quote {
		p.pos++
	}
	if p.eof() {
		return "", p.errf("unterminated string literal")
	}
	out := p.src[start:p.pos]
	p.pos++
	return out, nil
}

func (p *pathParser) parseStep() ([]Step, error) {
	p.skipWS()
	if p.eof() {
		return nil, p.errf("expected step")
	}
	// Abbreviations.
	if p.consume("..") {
		return []Step{{Axis: Parent, Test: AnyNode()}}, nil
	}
	if p.src[p.pos] == '.' {
		p.pos++
		return []Step{{Axis: Self, Test: AnyNode()}}, nil
	}
	if p.consume("@") {
		test, err := p.parseNodeTest()
		if err != nil {
			return nil, err
		}
		return p.parsePredicates([]Step{{Axis: AttributeAxis, Test: test}})
	}
	// Verbose axis?
	save := p.pos
	if name := p.peekName(); name != "" {
		after := p.pos + len(name)
		if strings.HasPrefix(p.src[after:], "::") {
			p.pos = after + 2
			test, err := p.parseNodeTest()
			if err != nil {
				return nil, err
			}
			if axis, ok := axisByName(name); ok {
				return p.parsePredicates([]Step{{Axis: axis, Test: test}})
			}
			// The document-order axes are supported through their classic
			// set-equivalent rewrites (the duplicate-eliminating operators
			// downstream restore node-set semantics):
			//   following::T  = ancestor-or-self::node()
			//                   /following-sibling::node()
			//                   /descendant-or-self::T
			//   preceding::T  = ancestor-or-self::node()
			//                   /preceding-sibling::node()
			//                   /descendant-or-self::T
			switch name {
			case "following":
				return p.parsePredicates([]Step{
					{Axis: AncestorOrSelf, Test: AnyNode()},
					{Axis: FollowingSibling, Test: AnyNode()},
					{Axis: DescendantOrSelf, Test: test},
				})
			case "preceding":
				return p.parsePredicates([]Step{
					{Axis: AncestorOrSelf, Test: AnyNode()},
					{Axis: PrecedingSibling, Test: AnyNode()},
					{Axis: DescendantOrSelf, Test: test},
				})
			}
			return nil, p.errf("unknown axis %q", name)
		}
	}
	p.pos = save
	test, err := p.parseNodeTest()
	if err != nil {
		return nil, err
	}
	return p.parsePredicates([]Step{{Axis: Child, Test: test}})
}

func (p *pathParser) parseNodeTest() (NodeTest, error) {
	p.skipWS()
	if p.eof() {
		return NodeTest{}, p.errf("expected node test")
	}
	if p.consume("*") {
		return Wildcard(), nil
	}
	name := p.peekName()
	if name == "" {
		return NodeTest{}, p.errf("expected node test, found %q", p.src[p.pos:])
	}
	p.pos += len(name)
	if p.consume("()") {
		switch name {
		case "node":
			return AnyNode(), nil
		case "text":
			return TextTest(), nil
		case "comment":
			return CommentTest(), nil
		case "processing-instruction":
			return PITest(), nil
		default:
			return NodeTest{}, p.errf("unknown kind test %s()", name)
		}
	}
	return NameTest(p.dict.Intern(name)), nil
}

// peekName returns the NCName at the cursor without consuming it.
func (p *pathParser) peekName() string {
	i := p.pos
	if i >= len(p.src) || !isNCNameStart(p.src[i]) {
		return ""
	}
	for i < len(p.src) && isNCNameChar(p.src[i]) {
		i++
	}
	return p.src[p.pos:i]
}

func isNCNameStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c >= 0x80
}

func isNCNameChar(c byte) bool {
	return isNCNameStart(c) || c == '-' || c == '.' || (c >= '0' && c <= '9')
}

func axisByName(name string) (Axis, bool) {
	for a, n := range axisNames {
		if n == name {
			return a, true
		}
	}
	return 0, false
}

// ParseUnion parses a union of location paths separated by top-level '|'
// (the XPath union operator). Each branch is a full location path;
// '|' inside predicates belongs to the nested path and is not split on.
func ParseUnion(dict *xmltree.Dictionary, src string) ([]*Path, error) {
	var out []*Path
	depth := 0
	start := 0
	flush := func(end int) error {
		part := strings.TrimSpace(src[start:end])
		if part == "" {
			return &ParseError{Pos: start, Msg: "empty union branch"}
		}
		p, err := Parse(dict, part)
		if err != nil {
			return err
		}
		out = append(out, p)
		return nil
	}
	inQuote := byte(0)
	for i := 0; i < len(src); i++ {
		c := src[i]
		switch {
		case inQuote != 0:
			if c == inQuote {
				inQuote = 0
			}
		case c == '"' || c == '\'':
			inQuote = c
		case c == '[':
			depth++
		case c == ']':
			depth--
		case c == '|' && depth == 0:
			if err := flush(i); err != nil {
				return nil, err
			}
			start = i + 1
		}
	}
	if err := flush(len(src)); err != nil {
		return nil, err
	}
	return out, nil
}
