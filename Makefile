# CI entry points. `make` runs the full set.
GO ?= go

.PHONY: all build test race vet bench-json clean

all: build vet test race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detect the concurrent layers (engine, buffer, vdisk, stats) plus the
# facade, which exercises the engine end to end.
race:
	$(GO) test -race ./internal/engine/... ./internal/buffer/... ./internal/vdisk/... ./internal/stats/... .

vet:
	$(GO) vet ./...

# Machine-readable benchmark snapshot (BENCH_*.json) for tracking the
# performance trajectory across commits. Slow: full evaluation.
bench-json:
	$(GO) run ./cmd/xbench -json bench-out

clean:
	rm -rf bench-out
