package vdisk

import (
	"bytes"
	"errors"
	"testing"

	"pathdb/internal/stats"
)

// faultTrace reads every page once and records which reads failed or
// delivered damaged bytes (pages were written as repeated byte(i)).
func faultTrace(t *testing.T, d *Disk, npages int) (errs, corrupt []int) {
	t.Helper()
	buf := make([]byte, d.PageSize())
	want := make([]byte, d.PageSize())
	for i := 0; i < npages; i++ {
		for j := range want {
			want[j] = 0
		}
		for j := 0; j < 8; j++ {
			want[j] = byte(i)
		}
		if err := d.ReadSync(PageID(i), buf); err != nil {
			var re *ReadError
			if !errors.As(err, &re) {
				t.Fatalf("page %d: unexpected error type %T", i, err)
			}
			if re.Page != PageID(i) {
				t.Fatalf("ReadError page = %d, want %d", re.Page, i)
			}
			errs = append(errs, i)
			continue
		}
		if !bytes.Equal(buf, want) {
			corrupt = append(corrupt, i)
		}
	}
	return errs, corrupt
}

func TestFaultScheduleDeterministic(t *testing.T) {
	const n = 400
	run := func() (errs, corrupt []int) {
		d, _ := newDisk(t, n)
		d.SetFaults(Faults{Seed: 7, ReadError: 0.1, Corrupt: 0.1})
		return faultTrace(t, d, n)
	}
	e1, c1 := run()
	e2, c2 := run()
	if len(e1) == 0 || len(c1) == 0 {
		t.Fatalf("expected both fault kinds at 10%%: errs=%d corrupt=%d", len(e1), len(c1))
	}
	if !equalInts(e1, e2) || !equalInts(c1, c2) {
		t.Fatalf("same seed produced different schedules:\n%v vs %v\n%v vs %v", e1, e2, c1, c2)
	}

	d3, _ := newDisk(t, n)
	d3.SetFaults(Faults{Seed: 8, ReadError: 0.1, Corrupt: 0.1})
	e3, c3 := faultTrace(t, d3, n)
	if equalInts(e1, e3) && equalInts(c1, c3) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestFaultRatesApproximate(t *testing.T) {
	const n = 2000
	d, led := newDisk(t, n)
	d.SetFaults(Faults{Seed: 3, ReadError: 0.05})
	errs, corrupt := faultTrace(t, d, n)
	if len(corrupt) != 0 {
		t.Fatalf("corruption disabled but %d pages damaged", len(corrupt))
	}
	// 5% of 2000 = 100 expected; allow a generous band.
	if len(errs) < 50 || len(errs) > 200 {
		t.Fatalf("read-error count %d far from 5%% of %d", len(errs), n)
	}
	if led.ReadFaults != int64(len(errs)) {
		t.Fatalf("ledger ReadFaults = %d, want %d", led.ReadFaults, len(errs))
	}
}

func TestFaultZeroDisarms(t *testing.T) {
	d, _ := newDisk(t, 100)
	d.SetFaults(Faults{Seed: 1, ReadError: 1})
	buf := make([]byte, d.PageSize())
	if err := d.ReadSync(0, buf); err == nil {
		t.Fatal("armed plane with ReadError=1 did not fail")
	}
	d.SetFaults(Faults{})
	errs, corrupt := faultTrace(t, d, 100)
	if len(errs) != 0 || len(corrupt) != 0 {
		t.Fatalf("disarmed plane still faulting: errs=%v corrupt=%v", errs, corrupt)
	}
}

func TestFaultLatencySpikeAccounting(t *testing.T) {
	d, led := newDisk(t, 100)
	buf := make([]byte, d.PageSize())
	for i := 0; i < 100; i++ {
		d.ReadSync(PageID(i), buf)
	}
	clean := led.Now

	d2, led2 := newDisk(t, 100)
	const spike = 7 * stats.Millisecond
	d2.SetFaults(Faults{Seed: 5, Latency: 1, Spike: spike})
	for i := 0; i < 100; i++ {
		d2.ReadSync(PageID(i), buf)
	}
	if led2.LatencySpikes != 100 {
		t.Fatalf("LatencySpikes = %d, want 100", led2.LatencySpikes)
	}
	if got, want := led2.Now-clean, 100*spike; got != want {
		t.Fatalf("spike time = %v, want %v", got, want)
	}
}

func TestFaultAsyncPath(t *testing.T) {
	const n = 300
	d, led := newDisk(t, n)
	d.SetFaults(Faults{Seed: 11, ReadError: 0.2, Corrupt: 0.2})
	for i := 0; i < n; i++ {
		d.Submit(PageID(i))
	}
	buf := make([]byte, d.PageSize())
	got := make(map[PageID]bool)
	nerr, ncorrupt := 0, 0
	for {
		p, ok, err := d.WaitAny(buf)
		if !ok {
			break
		}
		if got[p] {
			t.Fatalf("page %d delivered twice", p)
		}
		got[p] = true
		if err != nil {
			var re *ReadError
			if !errors.As(err, &re) || re.Page != p {
				t.Fatalf("page %d: bad error %v", p, err)
			}
			nerr++
			continue
		}
		clean := buf[0] == byte(p) && buf[7] == byte(p)
		for _, b := range buf[8:] {
			if b != 0 {
				clean = false
				break
			}
		}
		if !clean {
			ncorrupt++
		}
	}
	if len(got) != n {
		t.Fatalf("delivered %d completions, want %d", len(got), n)
	}
	if nerr == 0 || ncorrupt == 0 {
		t.Fatalf("async path saw no faults: errs=%d corrupt=%d", nerr, ncorrupt)
	}
	if led.ReadFaults != int64(nerr) {
		t.Fatalf("ledger ReadFaults = %d, want %d", led.ReadFaults, nerr)
	}
}

func TestCorruptPagePersists(t *testing.T) {
	d, _ := newDisk(t, 10)
	d.CorruptPage(3, 1)
	buf := make([]byte, d.PageSize())
	want := bytes.Repeat([]byte{3}, 8)
	damaged := 0
	for i := 0; i < 5; i++ {
		if err := d.ReadSync(3, buf); err != nil {
			t.Fatalf("CorruptPage must not make reads error: %v", err)
		}
		full := append(bytes.Clone(want), make([]byte, d.PageSize()-8)...)
		if !bytes.Equal(buf, full) {
			damaged++
		}
	}
	if damaged != 5 {
		t.Fatalf("persistent corruption visible on %d/5 reads", damaged)
	}
	// Rewriting heals the medium.
	d.Write(3, want)
	if err := d.ReadSync(3, buf); err != nil || !bytes.Equal(buf[:8], want) {
		t.Fatalf("rewrite did not heal page: err=%v buf=% x", err, buf[:8])
	}
}

func TestWriteCrashAfter(t *testing.T) {
	d, _ := newDisk(t, 4)
	d.SetFaults(Faults{Seed: 1, WriteCrash: true, WriteCrashAfter: 2})
	for i := 0; i < 4; i++ {
		d.Write(PageID(i), []byte{0xFF})
	}
	buf := make([]byte, d.PageSize())
	for i := 0; i < 4; i++ {
		if err := d.ReadSync(PageID(i), buf); err != nil {
			t.Fatal(err)
		}
		wrote := buf[0] == 0xFF
		if want := i < 2; wrote != want {
			t.Fatalf("page %d: wrote=%v, want %v (crash after 2 writes)", i, wrote, want)
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
