package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"encoding/json"

	"pathdb"
	"pathdb/internal/shard"
)

// Router is the sharded counterpart of Server: the same HTTP/JSON surface
// served by a scatter-gather coordinator over N independent volumes
// instead of one engine. It adds three router-level behaviours on top of
// the single-volume semantics:
//
//   - Scatter-gather queries. /query fans across every shard with the
//     request's deadline propagated; replicated spine matches are merged
//     exactly once and nodes come back in global document order. Under the
//     quorum policy a shard lost to storage faults yields a typed partial
//     200 ("partial": true plus a "degraded" list), not a 500.
//
//   - Routed updates. /update inserts land on the owning shard (ring
//     placement for spine parents, locality for entity parents); deletes
//     fan out so spine replicas never diverge.
//
//   - Per-tenant admission quotas. The X-Tenant header names the tenant
//     (default "anon"); a tenant at its concurrency share is answered 429
//     with Retry-After while other tenants keep being admitted — the PR 3
//     admission queue generalized so one hot tenant cannot starve the
//     rest.
//
// /metrics emits per-shard series with a shard label, cluster aggregates
// under pathdb_cluster_*, and router-level pathdb_server_* counters that
// exist only here (shard engines export pathdb_engine_*), so sums stay
// double-count-free.
type Router struct {
	cluster *shard.Cluster
	quotas  *shard.Quotas
	opts    Options
	mux     *http.ServeMux

	mu       sync.Mutex
	draining bool
	inflight sync.WaitGroup

	inflightN atomic.Int64
	requests  atomic.Int64 // /query requests accepted into a handler
	served    atomic.Int64 // 200s (partials included)
	partials  atomic.Int64 // 200s that were partial (a degraded shard excluded)
	shed      atomic.Int64 // 503s from drain or engine admission
	quotaShed atomic.Int64 // 429s from per-tenant quotas
	timeouts  atomic.Int64 // 504s
	badReqs   atomic.Int64 // 400s
	gone      atomic.Int64 // client disconnected mid-query
	ioErrors  atomic.Int64 // 500s from storage faults past the policy's tolerance

	updates    atomic.Int64
	updated    atomic.Int64
	updateErrs atomic.Int64
}

// NewRouter builds the sharded front end over cl. The cluster must outlive
// the router; Shutdown drains it.
func NewRouter(cl *shard.Cluster, opts Options, quota shard.QuotaConfig) *Router {
	rt := &Router{
		cluster: cl,
		quotas:  shard.NewQuotas(quota),
		opts:    opts.withDefaults(),
		mux:     http.NewServeMux(),
	}
	registerVersioned(rt.mux, "query", rt.handleQuery)
	registerVersioned(rt.mux, "update", rt.handleUpdate)
	registerVersioned(rt.mux, "metrics", rt.handleMetrics)
	registerVersioned(rt.mux, "healthz", rt.handleHealthz)
	return rt
}

// ServeHTTP implements http.Handler.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) { rt.mux.ServeHTTP(w, r) }

// Cluster returns the coordinator the router serves.
func (rt *Router) Cluster() *shard.Cluster { return rt.cluster }

// InFlight returns the number of requests currently executing.
func (rt *Router) InFlight() int64 { return rt.inflightN.Load() }

// Draining reports whether Shutdown has begun.
func (rt *Router) Draining() bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.draining
}

// Shutdown drains the router exactly like Server.Shutdown: refuse new
// requests, wait for in-flight handlers, then drain every shard engine.
func (rt *Router) Shutdown(ctx context.Context) error {
	rt.mu.Lock()
	rt.draining = true
	rt.mu.Unlock()

	done := make(chan struct{})
	go func() {
		rt.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		rt.cluster.Close()
		return ctx.Err()
	}
	return rt.cluster.Shutdown(ctx)
}

func (rt *Router) enter() bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.draining {
		return false
	}
	rt.inflight.Add(1)
	rt.inflightN.Add(1)
	return true
}

func (rt *Router) leave() {
	rt.inflightN.Add(-1)
	rt.inflight.Done()
}

// tenantOf names the request's tenant for quota accounting.
func tenantOf(r *http.Request) string {
	if t := r.Header.Get("X-Tenant"); t != "" {
		return t
	}
	return "anon"
}

// DegradedJSON reports one shard excluded from a partial result.
type DegradedJSON struct {
	Shard int    `json:"shard"`
	Kind  string `json:"kind"`
	Error string `json:"error"`
}

// ShardStatJSON is one shard's contribution echoed in a router response.
type ShardStatJSON struct {
	Shard      int    `json:"shard"`
	Count      int    `json:"count"`
	Cached     bool   `json:"cached,omitempty"`
	Strategy   string `json:"strategy,omitempty"`
	Shared     bool   `json:"shared,omitempty"`
	CostVNs    int64  `json:"cost_v_ns"`
	WallExecNs int64  `json:"wall_exec_ns"`
	Failed     bool   `json:"failed,omitempty"`
	Kind       string `json:"kind,omitempty"`
}

// RouterQueryResponse is the POST /query result body in router mode: the
// merged count plus the per-shard breakdown. Count already counts each
// replicated spine match once; SpineMatches says how many of the matches
// sit on the replicated spine.
type RouterQueryResponse struct {
	Path         string          `json:"path"`
	Count        int             `json:"count"`
	Shards       int             `json:"shards"`
	SpineMatches int             `json:"spine_matches"`
	Partial      bool            `json:"partial,omitempty"`
	Degraded     []DegradedJSON  `json:"degraded,omitempty"`
	PerShard     []ShardStatJSON `json:"per_shard"`
	Nodes        []NodeJSON      `json:"nodes,omitempty"`
	Truncated    bool            `json:"truncated,omitempty"`

	// CostVNs sums the shards' own virtual costs (work done);
	// WallExecNs is the slowest shard's execution time (latency —
	// the shards run in parallel).
	CostVNs    int64 `json:"cost_v_ns"`
	WallExecNs int64 `json:"wall_exec_ns"`
}

func (rt *Router) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, ErrorResponse{Error: "POST only"})
		return
	}
	if !rt.enter() {
		rt.shed.Add(1)
		rt.unavailable(w, "draining", pathdb.KindClosed.String())
		return
	}
	defer rt.leave()
	rt.requests.Add(1)

	tenant := tenantOf(r)
	if !rt.quotas.Acquire(tenant) {
		rt.quotaShed.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(rt.opts.RetryAfter))
		writeJSON(w, http.StatusTooManyRequests, ErrorResponse{
			Error: fmt.Sprintf("tenant %q at its admission quota", tenant),
			Kind:  pathdb.KindOverloaded.String(),
		})
		return
	}
	defer rt.quotas.Release(tenant)

	var req QueryRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, rt.opts.MaxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		rt.badRequest(w, fmt.Sprintf("bad request body: %v", err))
		return
	}
	if req.Path == "" {
		rt.badRequest(w, "missing \"path\"")
		return
	}
	if req.Limit < 0 || req.TimeoutMS < 0 {
		rt.badRequest(w, "\"limit\" and \"timeout_ms\" must be non-negative")
		return
	}
	opts := pathdb.QueryOptions{Sorted: req.Sorted}
	if req.Strategy != "" {
		strat, err := pathdb.ParseStrategy(req.Strategy)
		if err != nil {
			rt.badRequest(w, err.Error())
			return
		}
		opts.Strategy = strat
	}
	if req.Preds != "" {
		pe, err := pathdb.ParsePredEval(req.Preds)
		if err != nil {
			rt.badRequest(w, err.Error())
			return
		}
		opts.PredEval = pe
	}
	if err := rt.cluster.Check(req.Path); err != nil {
		rt.badRequest(w, err.Error())
		return
	}

	timeout := rt.opts.MaxTimeout
	if t := time.Duration(req.TimeoutMS) * time.Millisecond; t > 0 && t < timeout {
		timeout = t
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	// Content negotiation: Accept: application/x-ndjson streams the
	// cluster's k-way merge straight to the wire.
	if wantsStream(r) {
		rt.streamQuery(ctx, w, r, req, opts)
		return
	}

	m, err := rt.cluster.Query(ctx, req.Path, opts, req.Limit > 0)
	if err != nil {
		rt.queryError(w, r, err)
		return
	}
	rt.served.Add(1)
	if m.Partial {
		rt.partials.Add(1)
	}
	writeJSON(w, http.StatusOK, rt.response(req, m))
}

// response shapes a merged scatter-gather result.
func (rt *Router) response(req QueryRequest, m *shard.Merged) RouterQueryResponse {
	out := RouterQueryResponse{
		Path:         req.Path,
		Count:        m.Count,
		Shards:       rt.cluster.Shards(),
		SpineMatches: m.SpineMatches,
		Partial:      m.Partial,
	}
	for _, f := range m.Degraded {
		out.Degraded = append(out.Degraded, DegradedJSON{
			Shard: f.Shard,
			Kind:  f.Kind.String(),
			Error: f.Err.Error(),
		})
	}
	for _, ps := range m.PerShard {
		sj := ShardStatJSON{
			Shard:      ps.Shard,
			Count:      ps.Count,
			Cached:     ps.Cached,
			CostVNs:    int64(ps.CostV),
			WallExecNs: ps.WallExec,
			Failed:     ps.Failed,
		}
		switch {
		case ps.Failed:
			sj.Kind = ps.Kind.String()
		case ps.Cached:
			// No strategy ran: the count came from the epoch-keyed cache.
		default:
			sj.Strategy = ps.Strategy.String()
			out.CostVNs += int64(ps.CostV)
			if ps.WallExec > out.WallExecNs {
				out.WallExecNs = ps.WallExec
			}
			sj.Shared = ps.Shared
		}
		out.PerShard = append(out.PerShard, sj)
	}
	limit := req.Limit
	if limit > rt.opts.MaxNodes {
		limit = rt.opts.MaxNodes
	}
	if limit > len(m.Nodes) {
		limit = len(m.Nodes)
	}
	if limit > 0 {
		out.Nodes = make([]NodeJSON, limit)
		for i := range out.Nodes {
			sn := m.Nodes[i]
			out.Nodes[i] = NodeJSON{
				ID:    sn.Node.ID(),
				Name:  sn.Node.Name(),
				Ord:   sn.Node.OrdPath(),
				Shard: sn.Shard,
			}
		}
		out.Truncated = limit < len(m.Nodes)
	}
	return out
}

// RouterUpdateResponse is the POST /update result body in router mode.
type RouterUpdateResponse struct {
	Op string `json:"op"`
	// Shard is the owning shard of an insert (-1 for deletes, which fan
	// out).
	Shard        int       `json:"shard"`
	Inserted     *NodeJSON `json:"inserted,omitempty"`
	Deleted      int       `json:"deleted"`
	PerShard     []int     `json:"per_shard_deleted,omitempty"`
	Epoch        uint64    `json:"epoch,omitempty"`
	CommitWallNs int64     `json:"commit_wall_ns"`
}

func (rt *Router) handleUpdate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, ErrorResponse{Error: "POST only"})
		return
	}
	if !rt.enter() {
		rt.shed.Add(1)
		rt.unavailable(w, "draining", pathdb.KindClosed.String())
		return
	}
	defer rt.leave()
	rt.updates.Add(1)

	var req UpdateRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, rt.opts.MaxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		rt.updateBadRequest(w, fmt.Sprintf("bad request body: %v", err))
		return
	}
	if req.TimeoutMS < 0 {
		rt.updateBadRequest(w, "\"timeout_ms\" must be non-negative")
		return
	}
	timeout := rt.opts.MaxTimeout
	if t := time.Duration(req.TimeoutMS) * time.Millisecond; t > 0 && t < timeout {
		timeout = t
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	switch req.Op {
	case "insert":
		rt.handleInsert(ctx, w, r, req)
	case "delete":
		rt.handleDelete(ctx, w, r, req)
	default:
		rt.updateBadRequest(w, fmt.Sprintf("unknown op %q (want \"insert\" or \"delete\")", req.Op))
	}
}

func (rt *Router) handleInsert(ctx context.Context, w http.ResponseWriter, r *http.Request, req UpdateRequest) {
	if req.Parent == "" || req.XML == "" {
		rt.updateBadRequest(w, "insert needs \"parent\" and \"xml\"")
		return
	}
	if err := rt.cluster.CheckFragment(req.XML); err != nil {
		rt.updateBadRequest(w, err.Error())
		return
	}
	if err := rt.cluster.Check(req.Parent); err != nil {
		rt.updateBadRequest(w, err.Error())
		return
	}
	start := time.Now()
	res, err := rt.cluster.Insert(ctx, req.Parent, req.XML)
	if err != nil {
		var pe *shard.ParentError
		if errors.As(err, &pe) {
			rt.updateBadRequest(w, pe.Error())
			return
		}
		rt.updateError(w, r, err)
		return
	}
	rt.updated.Add(1)
	writeJSON(w, http.StatusOK, RouterUpdateResponse{
		Op:           "insert",
		Shard:        res.Shard,
		Inserted:     &NodeJSON{ID: res.Node.ID(), Name: res.Node.Name(), Ord: res.Node.OrdPath(), Shard: res.Shard},
		Epoch:        res.Epoch,
		CommitWallNs: time.Since(start).Nanoseconds(),
	})
}

func (rt *Router) handleDelete(ctx context.Context, w http.ResponseWriter, r *http.Request, req UpdateRequest) {
	if req.Path == "" {
		rt.updateBadRequest(w, "delete needs \"path\"")
		return
	}
	if err := rt.cluster.Check(req.Path); err != nil {
		rt.updateBadRequest(w, err.Error())
		return
	}
	start := time.Now()
	res, err := rt.cluster.Delete(ctx, req.Path)
	if err != nil {
		rt.updateError(w, r, err)
		return
	}
	rt.updated.Add(1)
	writeJSON(w, http.StatusOK, RouterUpdateResponse{
		Op:           "delete",
		Shard:        -1,
		Deleted:      res.Deleted,
		PerShard:     res.PerShard,
		CommitWallNs: time.Since(start).Nanoseconds(),
	})
}

// queryError maps scatter failures onto HTTP statuses with the same
// taxonomy the single-volume server uses. A QuorumError unwraps to the
// first shard's storage fault, so the errors.Is chain below classifies it
// as a 500 with the typed kind — the degraded-beyond-quorum outcome.
func (rt *Router) queryError(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, pathdb.ErrOverloaded):
		rt.shed.Add(1)
		rt.unavailable(w, "overloaded: a shard admission queue is full", pathdb.KindOverloaded.String())
	case errors.Is(err, pathdb.ErrClosed):
		rt.shed.Add(1)
		rt.unavailable(w, "draining", pathdb.KindClosed.String())
	case errors.Is(err, pathdb.ErrIO) || errors.Is(err, pathdb.ErrCorrupt):
		rt.ioErrors.Add(1)
		writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: err.Error(), Kind: errKind(err)})
	case errors.Is(err, pathdb.ErrTimeout) && r.Context().Err() == nil:
		rt.timeouts.Add(1)
		writeJSON(w, http.StatusGatewayTimeout, ErrorResponse{Error: "query timed out", Kind: errKind(err)})
	case r.Context().Err() != nil:
		rt.gone.Add(1)
	default:
		writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: err.Error(), Kind: errKind(err)})
	}
}

func (rt *Router) updateError(w http.ResponseWriter, r *http.Request, err error) {
	rt.updateErrs.Add(1)
	switch {
	case errors.Is(err, pathdb.ErrOverloaded):
		rt.shed.Add(1)
		rt.unavailable(w, "overloaded: a shard admission queue is full", pathdb.KindOverloaded.String())
	case errors.Is(err, pathdb.ErrClosed):
		rt.shed.Add(1)
		rt.unavailable(w, "draining", pathdb.KindClosed.String())
	case errors.Is(err, pathdb.ErrGone):
		writeJSON(w, http.StatusConflict, ErrorResponse{Error: err.Error(), Kind: errKind(err)})
	case errors.Is(err, pathdb.ErrIO) || errors.Is(err, pathdb.ErrCorrupt):
		rt.ioErrors.Add(1)
		writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: err.Error(), Kind: errKind(err)})
	case errors.Is(err, pathdb.ErrTimeout) && r.Context().Err() == nil:
		rt.timeouts.Add(1)
		writeJSON(w, http.StatusGatewayTimeout, ErrorResponse{Error: "update timed out", Kind: errKind(err)})
	case r.Context().Err() != nil:
		rt.gone.Add(1)
	default:
		writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: err.Error(), Kind: errKind(err)})
	}
}

func (rt *Router) unavailable(w http.ResponseWriter, msg, kind string) {
	w.Header().Set("Retry-After", strconv.Itoa(rt.opts.RetryAfter))
	writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{Error: msg, Kind: kind})
}

func (rt *Router) badRequest(w http.ResponseWriter, msg string) {
	rt.badReqs.Add(1)
	writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: msg})
}

func (rt *Router) updateBadRequest(w http.ResponseWriter, msg string) {
	rt.updateErrs.Add(1)
	rt.badRequest(w, msg)
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if rt.Draining() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintf(w, "ok shards=%d degraded=%d\n",
		rt.cluster.Shards(), rt.cluster.Shards()-len(rt.cluster.Ring().Healthy()))
}

// handleMetrics renders the sharded /metrics rollup: every shard-scoped
// series carries a shard label (HELP/TYPE stated once, one sample per
// shard), cluster-wide sums live under distinct pathdb_cluster_* names,
// and the pathdb_server_* request counters are router-level only — shard
// engines never emit them — so no series is double-counted between levels.
func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var b strings.Builder

	ms := rt.cluster.Metrics()
	shardLabel := func(i int) string { return labelValue("shard", strconv.Itoa(i)) }
	samples := func(f func(shard.ShardMetrics) float64) []labeledSample {
		out := make([]labeledSample, len(ms))
		for i, sm := range ms {
			out[i] = labeledSample{labels: shardLabel(sm.Shard), v: f(sm)}
		}
		return out
	}
	// One engine counter → a labeled per-shard series plus a cluster sum
	// under its own name.
	engC := func(name, agg, help string, f func(shard.ShardMetrics) float64) {
		labeledCounter(&b, name, help+" (per shard).", samples(f))
		sum := 0.0
		for _, sm := range ms {
			sum += f(sm)
		}
		counter(&b, agg, help+" (all shards).", sum)
	}
	engC("pathdb_engine_submitted_total", "pathdb_cluster_submitted_total",
		"Queries admitted by the shard engines", func(sm shard.ShardMetrics) float64 { return float64(sm.Engine.Submitted) })
	engC("pathdb_engine_rejected_total", "pathdb_cluster_rejected_total",
		"Submissions shed by full shard admission queues", func(sm shard.ShardMetrics) float64 { return float64(sm.Engine.Rejected) })
	engC("pathdb_engine_completed_total", "pathdb_cluster_completed_total",
		"Queries finished without error", func(sm shard.ShardMetrics) float64 { return float64(sm.Engine.Completed) })
	engC("pathdb_engine_cancelled_total", "pathdb_cluster_cancelled_total",
		"Queries failed with a context error", func(sm shard.ShardMetrics) float64 { return float64(sm.Engine.Cancelled) })
	engC("pathdb_engine_gangs_total", "pathdb_cluster_gangs_total",
		"Dispatcher batches executed", func(sm shard.ShardMetrics) float64 { return float64(sm.Engine.Gangs) })
	engC("pathdb_engine_batched_total", "pathdb_cluster_batched_total",
		"Queries that ran on a gang-shared I/O scheduler", func(sm shard.ShardMetrics) float64 { return float64(sm.Engine.Batched) })
	engC("pathdb_engine_faulted_total", "pathdb_cluster_faulted_total",
		"Queries failed by a storage page fault", func(sm shard.ShardMetrics) float64 { return float64(sm.Engine.Faulted) })
	engC("pathdb_engine_updates_total", "pathdb_cluster_updates_total",
		"Write transactions admitted", func(sm shard.ShardMetrics) float64 { return float64(sm.Engine.Updates) })

	engC("pathdb_txn_commits_total", "pathdb_cluster_commits_total",
		"Transactions committed", func(sm shard.ShardMetrics) float64 { return float64(sm.Txn.Commits) })
	engC("pathdb_txn_groups_total", "pathdb_cluster_groups_total",
		"Commit groups flushed to the WAL", func(sm shard.ShardMetrics) float64 { return float64(sm.Txn.Groups) })
	engC("pathdb_txn_wal_flushes_total", "pathdb_cluster_wal_flushes_total",
		"WAL page writes across all commit groups", func(sm shard.ShardMetrics) float64 { return float64(sm.Txn.Flushes) })
	labeledGauge(&b, "pathdb_txn_epoch", "Current published volume version (per shard).",
		samples(func(sm shard.ShardMetrics) float64 { return float64(sm.Txn.Epoch) }))
	labeledGauge(&b, "pathdb_txn_pinned_snapshots", "Snapshots currently pinned by readers (per shard).",
		samples(func(sm shard.ShardMetrics) float64 { return float64(sm.Txn.Pinned) }))

	// Each shard's full cost ledger, labeled; the virtual clocks of
	// independent volumes tick independently, so no cluster sum is
	// emitted for them (a sum of clock domains measures nothing).
	if len(ms) > 0 {
		for fi, nv := range ms[0].Ledger.Named() {
			vals := make([]labeledSample, len(ms))
			for i, sm := range ms {
				vals[i] = labeledSample{labels: shardLabel(sm.Shard), v: float64(sm.Ledger.Named()[fi].Value)}
			}
			if base, ok := strings.CutSuffix(nv.Name, "_ns"); ok {
				for i := range vals {
					vals[i].v /= 1e9
				}
				labeledCounter(&b, "pathdb_ledger_"+base+"_virtual_seconds_total",
					"Virtual clock \""+nv.Name+"\" of the shard cost ledger.", vals)
				continue
			}
			labeledCounter(&b, "pathdb_ledger_"+nv.Name+"_total",
				"Counter \""+nv.Name+"\" of the shard cost ledger.", vals)
		}
	}

	labeledGauge(&b, "pathdb_volume_pages", "Data pages per shard volume.",
		samples(func(sm shard.ShardMetrics) float64 { return float64(sm.Pages) }))
	labeledCounter(&b, "pathdb_shard_degraded_hits_total",
		"Queries a shard failed with a tolerable storage fault (absorbed by the quorum policy).",
		samples(func(sm shard.ShardMetrics) float64 { return float64(sm.DegradedHits) }))
	labeledCounter(&b, "pathdb_shard_count_cache_hits_total",
		"Per-shard counts served from the epoch-keyed cache without executing a plan.",
		samples(func(sm shard.ShardMetrics) float64 { return float64(sm.CacheHits) }))
	ring := rt.cluster.Ring()
	labeledGauge(&b, "pathdb_shard_degraded", "1 while the shard is marked degraded on the ring.",
		samples(func(sm shard.ShardMetrics) float64 { return boolGauge(ring.IsDegraded(sm.Shard)) }))

	// Per-tenant quota accounting.
	ts := rt.quotas.Stats()
	tsamples := func(f func(shard.TenantStat) float64) []labeledSample {
		out := make([]labeledSample, len(ts))
		for i, t := range ts {
			out[i] = labeledSample{labels: labelValue("tenant", t.Tenant), v: f(t)}
		}
		return out
	}
	if len(ts) > 0 {
		labeledGauge(&b, "pathdb_tenant_inflight", "Requests currently admitted per tenant.",
			tsamples(func(t shard.TenantStat) float64 { return float64(t.InFlight) }))
		labeledCounter(&b, "pathdb_tenant_admitted_total", "Requests admitted per tenant.",
			tsamples(func(t shard.TenantStat) float64 { return float64(t.Admitted) }))
		labeledCounter(&b, "pathdb_tenant_shed_total", "Requests answered 429 per tenant (quota exhausted).",
			tsamples(func(t shard.TenantStat) float64 { return float64(t.Shed) }))
	}

	// Router-level request counters: emitted only here (no shard engine
	// exports pathdb_server_*), so they never double-count against the
	// per-shard series above.
	gauge(&b, "pathdb_cluster_shards", "Shards served by this router.", float64(rt.cluster.Shards()))
	gauge(&b, "pathdb_server_inflight", "Requests currently executing.", float64(rt.inflightN.Load()))
	gauge(&b, "pathdb_server_draining", "1 once Shutdown has begun.", boolGauge(rt.Draining()))
	counter(&b, "pathdb_server_requests_total", "Query requests accepted into a handler.", float64(rt.requests.Load()))
	counter(&b, "pathdb_server_served_total", "Query requests answered 200.", float64(rt.served.Load()))
	counter(&b, "pathdb_server_partial_total", "Query requests answered 200 with a partial (degraded-shard) result.", float64(rt.partials.Load()))
	counter(&b, "pathdb_server_shed_total", "Requests answered 503 (overload or drain).", float64(rt.shed.Load()))
	counter(&b, "pathdb_server_quota_shed_total", "Requests answered 429 (per-tenant quota).", float64(rt.quotaShed.Load()))
	counter(&b, "pathdb_server_timeouts_total", "Requests answered 504 (deadline expired).", float64(rt.timeouts.Load()))
	counter(&b, "pathdb_server_bad_requests_total", "Requests answered 400.", float64(rt.badReqs.Load()))
	counter(&b, "pathdb_server_client_gone_total", "Requests whose client disconnected mid-flight.", float64(rt.gone.Load()))
	counter(&b, "pathdb_server_io_errors_total", "Requests answered 500 for a storage fault.", float64(rt.ioErrors.Load()))
	counter(&b, "pathdb_server_updates_total", "Update requests accepted into a handler.", float64(rt.updates.Load()))
	counter(&b, "pathdb_server_updated_total", "Update requests answered 200.", float64(rt.updated.Load()))
	counter(&b, "pathdb_server_update_errors_total", "Update requests answered 4xx/5xx.", float64(rt.updateErrs.Load()))

	_, _ = w.Write([]byte(b.String()))
}
