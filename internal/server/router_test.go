package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"testing"
	"time"

	"pathdb"
	"pathdb/internal/shard"
)

// newTestRouter wires a 4-shard XMark cluster behind a Router. mod lets a
// test adjust the shard config (faults need a tiny buffer and no count
// cache) before the cluster is built.
func newTestRouter(t *testing.T, cfg shard.Config, buffer int, quota shard.QuotaConfig) (*Router, *httptest.Server) {
	t.Helper()
	if cfg.Shards == 0 {
		cfg.Shards = 4
	}
	cl, err := shard.NewXMark(
		pathdb.XMarkConfig{ScaleFactor: 0.25, Seed: 42, EntityScale: 0.1},
		pathdb.Options{Layout: pathdb.Shuffled, LayoutSeed: 42, BufferPages: buffer},
		cfg)
	if err != nil {
		t.Fatal(err)
	}
	rt := NewRouter(cl, Options{}, quota)
	ts := httptest.NewServer(rt)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = rt.Shutdown(ctx)
	})
	return rt, ts
}

func postRouterQuery(t *testing.T, url string, req QueryRequest, tenant string) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequest(http.MethodPost, url+"/query", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		hreq.Header.Set("X-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func decodeRouterResponse(t *testing.T, data []byte) RouterQueryResponse {
	t.Helper()
	var qr RouterQueryResponse
	if err := json.Unmarshal(data, &qr); err != nil {
		t.Fatalf("response not valid JSON: %v\n%s", err, data)
	}
	return qr
}

// End to end: the router's merged count equals the coordinator's, the
// response carries the per-shard breakdown, and node requests come back in
// document order with shard tags.
func TestRouterQueryEndToEnd(t *testing.T) {
	rt, ts := newTestRouter(t, shard.Config{}, 256, shard.QuotaConfig{})

	want, err := rt.Cluster().Query(context.Background(), itemQuery, pathdb.QueryOptions{}, false)
	if err != nil {
		t.Fatal(err)
	}
	resp, body := postRouterQuery(t, ts.URL, QueryRequest{Path: itemQuery}, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	qr := decodeRouterResponse(t, body)
	if qr.Count != want.Count {
		t.Fatalf("router count %d, coordinator %d", qr.Count, want.Count)
	}
	if qr.Shards != 4 || len(qr.PerShard) != 4 {
		t.Fatalf("response reports %d shards with %d per-shard entries, want 4/4", qr.Shards, len(qr.PerShard))
	}

	// An identical count-only repeat is served from the epoch-keyed cache,
	// and the response says so per shard (no phantom strategy, no cost).
	resp, body = postRouterQuery(t, ts.URL, QueryRequest{Path: itemQuery}, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repeat status %d: %s", resp.StatusCode, body)
	}
	qr = decodeRouterResponse(t, body)
	if qr.Count != want.Count {
		t.Fatalf("cached repeat count %d, first pass %d", qr.Count, want.Count)
	}
	for _, ps := range qr.PerShard {
		if !ps.Cached {
			t.Fatalf("shard %d not served from cache on an unchanged volume: %+v", ps.Shard, ps)
		}
		if ps.Strategy != "" || ps.CostVNs != 0 {
			t.Fatalf("shard %d cached entry reports execution: %+v", ps.Shard, ps)
		}
	}

	resp, body = postRouterQuery(t, ts.URL, QueryRequest{Path: itemQuery, Limit: 10}, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("node query status %d: %s", resp.StatusCode, body)
	}
	qr = decodeRouterResponse(t, body)
	if len(qr.Nodes) != 10 || !qr.Truncated {
		t.Fatalf("limit 10: %d nodes, truncated=%v", len(qr.Nodes), qr.Truncated)
	}
	for i, n := range qr.Nodes {
		if n.Shard < 0 || n.Shard >= 4 {
			t.Fatalf("node %d tagged with shard %d", i, n.Shard)
		}
	}
}

// Inserts route to one owning shard; deletes fan out; both survive a
// round-trip through the HTTP surface.
func TestRouterUpdateRoundTrip(t *testing.T) {
	_, ts := newTestRouter(t, shard.Config{}, 256, shard.QuotaConfig{})

	post := func(req UpdateRequest) (*http.Response, RouterUpdateResponse) {
		body, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/update", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		var ur RouterUpdateResponse
		if resp.StatusCode == http.StatusOK {
			if err := json.Unmarshal(buf.Bytes(), &ur); err != nil {
				t.Fatalf("update response not valid JSON: %v\n%s", err, buf.Bytes())
			}
		}
		return resp, ur
	}

	resp, ur := post(UpdateRequest{Op: "insert", Parent: "/site", XML: "<routerpad/>"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("insert status %d", resp.StatusCode)
	}
	if ur.Shard < 0 || ur.Shard >= 4 || ur.Inserted == nil || ur.Epoch == 0 {
		t.Fatalf("insert response %+v lacks owner/node/epoch", ur)
	}

	qresp, body := postRouterQuery(t, ts.URL, QueryRequest{Path: "/site//routerpad"}, "")
	if qresp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d", qresp.StatusCode)
	}
	if qr := decodeRouterResponse(t, body); qr.Count != 1 {
		t.Fatalf("inserted node counts %d cluster-wide, want 1", qr.Count)
	}

	resp, ur = post(UpdateRequest{Op: "delete", Path: "/site//routerpad"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete status %d", resp.StatusCode)
	}
	if ur.Deleted != 1 || ur.Shard != -1 {
		t.Fatalf("delete response %+v, want deleted=1 shard=-1", ur)
	}

	// A malformed parent is the client's fault: 400, not 500.
	resp, _ = post(UpdateRequest{Op: "insert", Parent: "/site//item", XML: "<x/>"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("ambiguous parent: status %d, want 400", resp.StatusCode)
	}
}

// metricSamples parses a /metrics payload into name{labels} -> value.
var metricLine = regexp.MustCompile(`(?m)^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\S+)$`)

func metricSamples(t *testing.T, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	out := make(map[string]float64)
	for _, m := range metricLine.FindAllStringSubmatch(buf.String(), -1) {
		v, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			t.Fatalf("metric %s%s: bad value %q", m[1], m[2], m[3])
		}
		out[m[1]+m[2]] = v
	}
	return out
}

// The sharded /metrics rollup: every shard-scoped series carries a shard
// label, the cluster aggregate equals the sum of the labeled samples, and
// router-level pathdb_server_* series appear exactly once, unlabeled — so
// nothing is double-counted between the levels.
func TestShardedMetricsRollup(t *testing.T) {
	_, ts := newTestRouter(t, shard.Config{}, 256, shard.QuotaConfig{})

	for i := 0; i < 3; i++ {
		resp, body := postRouterQuery(t, ts.URL, QueryRequest{Path: descQuery}, "tenant-a")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query %d status %d: %s", i, resp.StatusCode, body)
		}
	}

	ms := metricSamples(t, ts.URL)
	for _, name := range []string{
		"pathdb_engine_submitted_total", "pathdb_engine_completed_total",
		"pathdb_txn_epoch", "pathdb_volume_pages", "pathdb_shard_degraded_hits_total",
		"pathdb_shard_count_cache_hits_total",
	} {
		sum := 0.0
		for s := 0; s < 4; s++ {
			v, ok := ms[name+`{shard="`+strconv.Itoa(s)+`"}`]
			if !ok {
				t.Fatalf("series %s missing shard %d sample", name, s)
			}
			sum += v
		}
		if _, ok := ms[name]; ok {
			t.Fatalf("series %s also appears unlabeled — double-counted", name)
		}
		if agg, ok := ms["pathdb_cluster_"+name[len("pathdb_engine_"):]]; ok {
			if agg != sum {
				t.Fatalf("cluster aggregate of %s is %v, labeled sum %v", name, agg, sum)
			}
		}
	}
	if got := ms["pathdb_cluster_shards"]; got != 4 {
		t.Fatalf("pathdb_cluster_shards %v, want 4", got)
	}
	agg, sum := ms["pathdb_cluster_completed_total"], 0.0
	for s := 0; s < 4; s++ {
		sum += ms[`pathdb_engine_completed_total{shard="`+strconv.Itoa(s)+`"}`]
	}
	if agg != sum {
		t.Fatalf("pathdb_cluster_completed_total %v != labeled sum %v", agg, sum)
	}
	if ms["pathdb_server_requests_total"] < 3 {
		t.Fatalf("router served 3 queries, pathdb_server_requests_total=%v", ms["pathdb_server_requests_total"])
	}
	if ms[`pathdb_tenant_admitted_total{tenant="tenant-a"}`] < 3 {
		t.Fatalf("tenant-a admitted %v, want >= 3", ms[`pathdb_tenant_admitted_total{tenant="tenant-a"}`])
	}
}

// A tenant at its admission share is answered 429 with Retry-After while
// other tenants keep being admitted.
func TestRouterTenantQuota(t *testing.T) {
	rt, ts := newTestRouter(t, shard.Config{}, 256,
		shard.QuotaConfig{Capacity: 8, MaxTenantShare: 0.25})

	// Pin tenant-a at its share (2 of 8) from the inside; the next request
	// must shed while tenant-b still gets through.
	for i := 0; i < rt.quotas.PerTenant(); i++ {
		if !rt.quotas.Acquire("tenant-a") {
			t.Fatalf("acquire %d failed below the share", i)
		}
		defer rt.quotas.Release("tenant-a")
	}

	resp, body := postRouterQuery(t, ts.URL, QueryRequest{Path: itemQuery}, "tenant-a")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("tenant at quota: status %d, want 429 (%s)", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil || er.Kind != pathdb.KindOverloaded.String() {
		t.Fatalf("429 body %s, want kind %q", body, pathdb.KindOverloaded)
	}

	resp, body = postRouterQuery(t, ts.URL, QueryRequest{Path: itemQuery}, "tenant-b")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tenant-b sheds with tenant-a at quota: status %d (%s)", resp.StatusCode, body)
	}

	ms := metricSamples(t, ts.URL)
	if ms["pathdb_server_quota_shed_total"] < 1 {
		t.Fatalf("quota shed not counted: %v", ms["pathdb_server_quota_shed_total"])
	}
	if ms[`pathdb_tenant_shed_total{tenant="tenant-a"}`] < 1 {
		t.Fatalf("tenant-a shed not counted")
	}
}

// A shard lost to storage faults yields a typed partial 200 — with the
// correct merged count — never a 500.
func TestRouterDegradedShardPartial200(t *testing.T) {
	const bad = 2
	rt, ts := newTestRouter(t, shard.Config{NoCountCache: true}, 8, shard.QuotaConfig{})

	base, err := rt.Cluster().Query(context.Background(), descQuery, pathdb.QueryOptions{}, false)
	if err != nil {
		t.Fatal(err)
	}
	expect := 0
	answered := 0
	for _, ps := range base.PerShard {
		if ps.Shard == bad {
			continue
		}
		expect += ps.Count
		answered++
	}
	expect -= (answered - 1) * base.SpineMatches

	rt.Cluster().SetFaults(bad, pathdb.FaultConfig{Seed: 7, ReadError: 0.5})
	partials := 0
	for i := 0; i < 40 && partials == 0; i++ {
		resp, body := postRouterQuery(t, ts.URL, QueryRequest{Path: descQuery}, "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query %d: status %d under a one-shard fault (%s) — want 200", i, resp.StatusCode, body)
		}
		qr := decodeRouterResponse(t, body)
		if !qr.Partial {
			if qr.Count != base.Count {
				t.Fatalf("query %d: complete count %d, want %d", i, qr.Count, base.Count)
			}
			continue
		}
		partials++
		if len(qr.Degraded) != 1 || qr.Degraded[0].Shard != bad {
			t.Fatalf("query %d: degraded %+v, want shard %d", i, qr.Degraded, bad)
		}
		if qr.Degraded[0].Kind != pathdb.KindIO.String() && qr.Degraded[0].Kind != pathdb.KindCorrupt.String() {
			t.Fatalf("query %d: degraded kind %q not a storage kind", i, qr.Degraded[0].Kind)
		}
		if qr.Count != expect {
			t.Fatalf("query %d: partial count %d, want %d", i, qr.Count, expect)
		}
	}
	if partials == 0 {
		t.Fatal("no partial result in 40 queries at 50% read faults")
	}

	ms := metricSamples(t, ts.URL)
	if ms["pathdb_server_partial_total"] < 1 {
		t.Fatalf("pathdb_server_partial_total=%v after a partial 200", ms["pathdb_server_partial_total"])
	}
	if ms[`pathdb_shard_degraded_hits_total{shard="`+strconv.Itoa(bad)+`"}`] < 1 {
		t.Fatal("degraded shard's hit counter never moved")
	}
}

// Shutdown drains: in-flight requests finish, new ones are refused with
// 503 + Retry-After, and the drain completes.
func TestRouterDrain(t *testing.T) {
	rt, ts := newTestRouter(t, shard.Config{}, 256, shard.QuotaConfig{})

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := rt.Shutdown(ctx); err != nil {
		t.Fatalf("drain failed: %v", err)
	}
	resp, body := postRouterQuery(t, ts.URL, QueryRequest{Path: itemQuery}, "")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain status %d (%s), want 503", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("post-drain 503 without Retry-After")
	}
}
