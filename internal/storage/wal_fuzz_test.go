package storage

import (
	"bytes"
	"testing"

	"pathdb/internal/vdisk"
)

// FuzzDecodeWalHeader throws arbitrary bytes at the WAL header decoder —
// the one parser that runs on recovery-path data before any checksum has
// been verified, so it must tolerate every input. Properties checked:
// never panic, reject short/garbled buffers, and round-trip anything
// accepted.
func FuzzDecodeWalHeader(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(walMagic))
	f.Add(encodeWalHeader(512, nil))
	f.Add(encodeWalHeader(512, []walEntry{
		{target: 3, logPage: 9, checksum: 0xDEADBEEF},
		{target: 4, logPage: 10, checksum: 1},
	}))
	// Entry count far beyond the buffer.
	f.Add(append([]byte(walMagic), 0xFF, 0xFF, 0xFF, 0xFF))

	f.Fuzz(func(t *testing.T, raw []byte) {
		entries, ok := decodeWalHeader(raw)
		if !ok {
			return
		}
		if 12+16*len(entries) > len(raw) {
			t.Fatalf("accepted %d entries from %d bytes", len(entries), len(raw))
		}
		// Accepted headers re-encode to the bytes they were parsed from.
		enc := encodeWalHeader(4096, entries)
		if !bytes.Equal(enc, raw[:len(enc)]) {
			t.Fatalf("round-trip mismatch:\n got % x\nwant % x", enc, raw[:len(enc)])
		}
		for _, e := range entries {
			if e.target == vdisk.InvalidPage {
				// decode is untyped; recovery validates targets later.
				_ = e
			}
		}
	})
}
