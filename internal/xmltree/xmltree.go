// Package xmltree defines the logical document model used throughout the
// repository: a labeled, ordered tree, exactly as in Sec. 3.1 of the paper.
//
// Element tags are interned in a Dictionary (the paper's tag alphabet Σ), so
// node tests can be evaluated as integer comparisons against tag sets. Text
// nodes, attributes, comments and processing instructions are carried along
// as the paper permits ("they can be incorporated without difficulty").
package xmltree

import (
	"fmt"
	"strings"
	"sync"
)

// Kind classifies logical nodes.
type Kind uint8

// Node kinds. Document is the virtual root that owns the root element.
const (
	Document Kind = iota
	Element
	Text
	Attribute
	Comment
	ProcInst
)

// String returns a readable kind name.
func (k Kind) String() string {
	switch k {
	case Document:
		return "document"
	case Element:
		return "element"
	case Text:
		return "text"
	case Attribute:
		return "attribute"
	case Comment:
		return "comment"
	case ProcInst:
		return "processing-instruction"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// TagID is an interned element or attribute name. NoTag marks kinds that do
// not carry a name (text, comment).
type TagID int32

// NoTag is the TagID of unnamed nodes.
const NoTag TagID = -1

// Dictionary interns tag names. It is the concrete representation of the tag
// alphabet Σ; a given Document and all queries against it must share one.
//
// Safe for concurrent use: query parsing interns the tag names it meets, and
// under the networked front end (internal/server) arbitrary paths — with
// arbitrary fresh names — are parsed from many handler goroutines at once.
type Dictionary struct {
	mu     sync.RWMutex
	byName map[string]TagID
	names  []string
}

// NewDictionary returns an empty dictionary.
func NewDictionary() *Dictionary {
	return &Dictionary{byName: make(map[string]TagID)}
}

// Intern returns the TagID for name, assigning a fresh one if needed.
func (d *Dictionary) Intern(name string) TagID {
	d.mu.RLock()
	id, ok := d.byName[name]
	d.mu.RUnlock()
	if ok {
		return id
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if id, ok := d.byName[name]; ok {
		return id
	}
	id = TagID(len(d.names))
	d.names = append(d.names, name)
	d.byName[name] = id
	return id
}

// Lookup returns the TagID for name, or (NoTag, false) if it was never
// interned. Useful for queries: a name test over an unknown tag matches
// nothing.
func (d *Dictionary) Lookup(name string) (TagID, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	id, ok := d.byName[name]
	if !ok {
		return NoTag, false
	}
	return id, true
}

// Name returns the string for id. It panics on an invalid id.
func (d *Dictionary) Name(id TagID) string {
	if id == NoTag {
		return ""
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.names[id]
}

// Len reports the number of interned tags.
func (d *Dictionary) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.names)
}

// Node is a logical document node.
//
// Attributes are kept out of Children so that child/descendant axes see only
// the XPath child sequence; the attribute axis walks Attrs.
type Node struct {
	Kind     Kind
	Tag      TagID  // Element/Attribute name; NoTag otherwise
	Text     string // Text content, Attribute value, Comment body, PI body
	Parent   *Node
	Children []*Node
	Attrs    []*Node
}

// NewDocument returns a document root node.
func NewDocument() *Node {
	return &Node{Kind: Document, Tag: NoTag}
}

// NewElement returns an unattached element node.
func NewElement(tag TagID) *Node {
	return &Node{Kind: Element, Tag: tag}
}

// NewText returns an unattached text node.
func NewText(s string) *Node {
	return &Node{Kind: Text, Tag: NoTag, Text: s}
}

// AppendChild attaches c as the last child of n and returns c.
func (n *Node) AppendChild(c *Node) *Node {
	c.Parent = n
	n.Children = append(n.Children, c)
	return c
}

// SetAttr attaches an attribute node with the given name and value.
func (n *Node) SetAttr(tag TagID, value string) *Node {
	a := &Node{Kind: Attribute, Tag: tag, Text: value, Parent: n}
	n.Attrs = append(n.Attrs, a)
	return a
}

// Root returns the topmost ancestor of n.
func (n *Node) Root() *Node {
	for n.Parent != nil {
		n = n.Parent
	}
	return n
}

// Walk visits n and all its element/text descendants in document order
// (preorder). Attributes are not visited. If f returns false the subtree
// below the current node is skipped.
func (n *Node) Walk(f func(*Node) bool) {
	if !f(n) {
		return
	}
	for _, c := range n.Children {
		c.Walk(f)
	}
}

// Count returns the number of nodes in the subtree rooted at n for which
// pred is true (attributes included).
func (n *Node) Count(pred func(*Node) bool) int {
	total := 0
	n.Walk(func(m *Node) bool {
		if pred(m) {
			total++
		}
		for _, a := range m.Attrs {
			if pred(a) {
				total++
			}
		}
		return true
	})
	return total
}

// CountTag returns the number of elements with the given tag in the subtree.
func (n *Node) CountTag(tag TagID) int {
	return n.Count(func(m *Node) bool { return m.Kind == Element && m.Tag == tag })
}

// Size returns the number of nodes in the subtree (attributes included).
func (n *Node) Size() int {
	return n.Count(func(*Node) bool { return true })
}

// TextContent concatenates all descendant text, as XPath string() would.
func (n *Node) TextContent() string {
	var b strings.Builder
	n.Walk(func(m *Node) bool {
		if m.Kind == Text {
			b.WriteString(m.Text)
		}
		return true
	})
	return b.String()
}

// Equal reports deep structural equality of two subtrees (same kinds, tags,
// texts, attribute lists and child lists). Parents are not compared.
func Equal(a, b *Node) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Kind != b.Kind || a.Tag != b.Tag || a.Text != b.Text {
		return false
	}
	if len(a.Attrs) != len(b.Attrs) || len(a.Children) != len(b.Children) {
		return false
	}
	for i := range a.Attrs {
		if !Equal(a.Attrs[i], b.Attrs[i]) {
			return false
		}
	}
	for i := range a.Children {
		if !Equal(a.Children[i], b.Children[i]) {
			return false
		}
	}
	return true
}

// Builder provides a convenient fluent way to construct trees in tests and
// generators without tracking parent pointers by hand.
type Builder struct {
	Dict *Dictionary
	cur  *Node
	root *Node
}

// NewBuilder returns a builder with a fresh document root.
func NewBuilder(dict *Dictionary) *Builder {
	root := NewDocument()
	return &Builder{Dict: dict, cur: root, root: root}
}

// Begin opens a new element with the given tag name and descends into it.
func (b *Builder) Begin(name string) *Builder {
	e := NewElement(b.Dict.Intern(name))
	b.cur.AppendChild(e)
	b.cur = e
	return b
}

// End closes the current element, ascending to its parent.
func (b *Builder) End() *Builder {
	if b.cur.Parent == nil {
		panic("xmltree: End called at document root")
	}
	b.cur = b.cur.Parent
	return b
}

// Attr adds an attribute to the current element.
func (b *Builder) Attr(name, value string) *Builder {
	b.cur.SetAttr(b.Dict.Intern(name), value)
	return b
}

// Text appends a text child to the current element.
func (b *Builder) Text(s string) *Builder {
	b.cur.AppendChild(NewText(s))
	return b
}

// Leaf appends an element with pure text content and does not descend.
func (b *Builder) Leaf(name, text string) *Builder {
	return b.Begin(name).Text(text).End()
}

// Doc returns the document root. It panics if elements are still open, which
// catches unbalanced Begin/End pairs in generator code.
func (b *Builder) Doc() *Node {
	if b.cur != b.root {
		panic("xmltree: Doc called with unclosed elements")
	}
	return b.root
}

// Depth returns the number of currently open elements.
func (b *Builder) Depth() int {
	d := 0
	for n := b.cur; n.Parent != nil; n = n.Parent {
		d++
	}
	return d
}
