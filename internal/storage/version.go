package storage

import (
	"sync/atomic"

	"pathdb/internal/vdisk"
)

// Multi-version storage. NodeIDs embed *logical* page ids, so a node's
// identity survives relocation: a VersionMap is the sparse indirection from
// logical page to the physical page holding its current bytes. Pages that
// were never rewritten stay identity-mapped and carry no entry, which keeps
// the map proportional to the volume's update churn, not its size.
//
// A VersionMap is immutable once published. Writers build the successor
// with Apply (copy-on-write of the map itself), publish it atomically, and
// readers pin whichever version was current when their query was admitted —
// the snapshot-read half of the transaction design (see internal/txn). The
// map is injective by construction: fresh logical pages come from the
// device allocator (never reused), and physical copy targets come from the
// allocator or from the reclaimed-page free list, whose members no version
// references.

// VersionMap is one immutable volume version: an epoch number, the sparse
// logical→physical relocation table, and the full update-extension page
// directory as of that epoch.
type VersionMap struct {
	epoch  uint64
	m      map[vdisk.PageID]vdisk.PageID
	extras []vdisk.PageID
	// wrote records, per logical page, the epoch of the last commit that
	// rewrote it. Pages never written since volume adoption carry no entry
	// and report epoch 0. This is what makes decoded-cluster caching
	// epoch-precise: (logical page, wrote[page]) names one immutable byte
	// image across every version that shares it.
	wrote map[vdisk.PageID]uint64
}

// NewVersionMap builds a version from recovered or initial state. The map
// and extras slices are adopted, not copied; callers hand over ownership.
// Every relocated and extension page is conservatively stamped with the
// recovered epoch: recovery starts with an empty decoded-cluster cache, so
// over-stamping only forgoes cross-version sharing, never correctness.
func NewVersionMap(epoch uint64, m map[vdisk.PageID]vdisk.PageID, extras []vdisk.PageID) *VersionMap {
	if m == nil {
		m = map[vdisk.PageID]vdisk.PageID{}
	}
	wrote := make(map[vdisk.PageID]uint64, len(m)+len(extras))
	for l := range m {
		wrote[l] = epoch
	}
	for _, p := range extras {
		wrote[p] = epoch
	}
	return &VersionMap{epoch: epoch, m: m, extras: extras, wrote: wrote}
}

// Epoch returns the version's commit epoch (0 for the initial version).
func (vm *VersionMap) Epoch() uint64 { return vm.epoch }

// Resolve maps a logical page to the physical page holding its bytes in
// this version. Identity for pages that were never rewritten.
func (vm *VersionMap) Resolve(p vdisk.PageID) vdisk.PageID {
	if phys, ok := vm.m[p]; ok {
		return phys
	}
	return p
}

// Extras returns the update-extension pages of this version, in scan
// order. Callers must not mutate the slice.
func (vm *VersionMap) Extras() []vdisk.PageID { return vm.extras }

// Relocated returns the number of non-identity entries (for stats).
func (vm *VersionMap) Relocated() int { return len(vm.m) }

// Entries copies the non-identity relocation table (for checkpointing).
func (vm *VersionMap) Entries() map[vdisk.PageID]vdisk.PageID {
	out := make(map[vdisk.PageID]vdisk.PageID, len(vm.m))
	for l, p := range vm.m {
		out[l] = p
	}
	return out
}

// PageEpoch returns the epoch of the last commit that rewrote logical page
// p, or 0 if p has never been written since adoption. (logical, PageEpoch)
// uniquely names a page's byte image across versions.
func (vm *VersionMap) PageEpoch(p vdisk.PageID) uint64 { return vm.wrote[p] }

// WrittenSince calls fn for every logical page whose last-write epoch is
// strictly greater than since (i.e. pages rewritten or created by commits
// after epoch `since`). Iteration order is unspecified.
func (vm *VersionMap) WrittenSince(since uint64, fn func(p vdisk.PageID, epoch uint64)) {
	for p, e := range vm.wrote {
		if e > since {
			fn(p, e)
		}
	}
}

// Apply builds the successor version: deltas relocate logical pages to new
// physical homes, fresh appends identity-mapped extension pages to the
// directory. Both delta and fresh pages are stamped with the new epoch in
// the per-page write-epoch table. The receiver is not modified.
func (vm *VersionMap) Apply(epoch uint64, deltas map[vdisk.PageID]vdisk.PageID, fresh []vdisk.PageID) *VersionMap {
	nm := make(map[vdisk.PageID]vdisk.PageID, len(vm.m)+len(deltas))
	for l, p := range vm.m {
		nm[l] = p
	}
	for l, p := range deltas {
		nm[l] = p
	}
	extras := vm.extras
	if len(fresh) > 0 {
		extras = append(append([]vdisk.PageID(nil), vm.extras...), fresh...)
	}
	wrote := make(map[vdisk.PageID]uint64, len(vm.wrote)+len(deltas)+len(fresh))
	for p, e := range vm.wrote {
		wrote[p] = e
	}
	for l := range deltas {
		wrote[l] = epoch
	}
	for _, p := range fresh {
		wrote[p] = epoch
	}
	return &VersionMap{epoch: epoch, m: nm, extras: extras, wrote: wrote}
}

// versionHandle shares the latest published version between a base store
// and every view derived from it. Load returns nil until the volume is
// adopted into transactional mode (fresh or legacy volumes run identity).
type versionHandle struct {
	vm atomic.Pointer[VersionMap]
}

func (h *versionHandle) Load() *VersionMap    { return h.vm.Load() }
func (h *versionHandle) Store(vm *VersionMap) { h.vm.Store(vm) }
