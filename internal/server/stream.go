package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strings"

	"pathdb"
)

// The HTTP API is versioned under /v1/. The unversioned paths from earlier
// revisions remain mounted as aliases with identical behaviour, answering a
// Deprecation header plus a Link to their successor so clients can migrate
// mechanically.
//
// registerVersioned mounts h at /v1/<name> and the deprecated legacy alias
// at /<name>.
func registerVersioned(mux *http.ServeMux, name string, h http.HandlerFunc) {
	mux.HandleFunc("/v1/"+name, h)
	mux.HandleFunc("/"+name, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", "</v1/"+name+">; rel=\"successor-version\"")
		h(w, r)
	})
}

// ndjsonType is the media type selecting streamed delivery on /v1/query.
const ndjsonType = "application/x-ndjson"

// streamChunk is how many NDJSON lines are written between flushes: the
// response path holds at most one chunk of encoded records plus the
// cursor's bounded read-ahead, never the full result.
const streamChunk = 64

// wantsStream reports whether the request negotiated NDJSON streaming.
func wantsStream(r *http.Request) bool {
	for _, part := range strings.Split(r.Header.Get("Accept"), ",") {
		mt, _, _ := strings.Cut(strings.TrimSpace(part), ";")
		if strings.TrimSpace(mt) == ndjsonType {
			return true
		}
	}
	return false
}

// StreamSummaryJSON is the trailing record of an NDJSON query stream: after
// one NodeJSON line per result node, exactly one summary line closes the
// stream. A query that fails mid-stream (the HTTP status is long since
// written) reports the failure here, in Error and Kind; clients must treat
// a stream that ends without a summary line as aborted.
type StreamSummaryJSON struct {
	// Summary is always true — the discriminator against NodeJSON lines,
	// which never carry the field.
	Summary bool   `json:"summary"`
	Path    string `json:"path"`
	// Count is how many node lines the stream carried.
	Count int `json:"count"`
	// Strategy is the resolved physical strategy ("xschedule", "xscan",
	// "simple"); in router mode it is omitted (each shard chooses its own —
	// see PerShard in the buffered response for the breakdown).
	Strategy string `json:"strategy,omitempty"`
	Shared   bool   `json:"shared,omitempty"`
	// Truncated is set when the request's limit cut the stream short.
	Truncated bool `json:"truncated,omitempty"`

	CostVNs          int64 `json:"cost_v_ns,omitempty"`
	VirtualLatencyNs int64 `json:"virtual_latency_ns,omitempty"`

	// Partial and Degraded mirror the buffered router response: shards
	// lost to tolerable storage faults mid-merge. Single-volume streams
	// never set them.
	Partial  bool           `json:"partial,omitempty"`
	Degraded []DegradedJSON `json:"degraded,omitempty"`

	// Error and Kind report a mid-stream failure (taxonomy kind included);
	// both empty on success.
	Error string `json:"error,omitempty"`
	Kind  string `json:"kind,omitempty"`
}

// ndjsonWriter emits NDJSON records with chunked flushing.
type ndjsonWriter struct {
	enc     *json.Encoder
	flusher http.Flusher
	lines   int
	failed  bool
}

func newNDJSONWriter(w http.ResponseWriter) *ndjsonWriter {
	w.Header().Set("Content-Type", ndjsonType)
	w.WriteHeader(http.StatusOK)
	f, _ := w.(http.Flusher)
	return &ndjsonWriter{enc: json.NewEncoder(w), flusher: f}
}

// write encodes one record as a line, flushing every streamChunk lines.
// After a transport failure (the client hung up) it reports false and goes
// inert — the caller stops pulling the cursor.
func (nw *ndjsonWriter) write(v any) bool {
	if nw.failed {
		return false
	}
	if err := nw.enc.Encode(v); err != nil {
		nw.failed = true
		return false
	}
	nw.lines++
	if nw.lines%streamChunk == 0 {
		nw.flush()
	}
	return true
}

func (nw *ndjsonWriter) flush() {
	if nw.flusher != nil && !nw.failed {
		nw.flusher.Flush()
	}
}

// streamQuery is the NDJSON delivery mode of /v1/query on the single-volume
// server: one NodeJSON line per node as the cursor produces them, a
// trailing StreamSummaryJSON line, chunked flushes in between. The
// request's limit truncates production (the cursor stops pulling the
// operator tree), not just the echo; MaxNodes does not apply — a streamed
// response is bounded by back-pressure, not by a response buffer.
func (s *Server) streamQuery(ctx context.Context, w http.ResponseWriter, r *http.Request, req QueryRequest, opts pathdb.QueryOptions) {
	opts.Limit = req.Limit
	cur, err := s.ses.TryStream(ctx, req.Path, opts)
	if err != nil {
		// Nothing streamed yet: fail with the same status mapping as the
		// buffered mode.
		s.queryError(w, r, err)
		return
	}
	defer cur.Close()

	nw := newNDJSONWriter(w)
	for cur.Next() {
		n := cur.Node()
		if !nw.write(NodeJSON{ID: n.ID(), Name: n.Name(), Ord: n.OrdPath()}) {
			// Client hung up; cancel the query (Close withdraws prefetches).
			s.gone.Add(1)
			return
		}
	}

	sum := StreamSummaryJSON{
		Summary:   true,
		Path:      req.Path,
		Count:     cur.Count(),
		Truncated: opts.Limit > 0 && cur.Count() >= opts.Limit,
	}
	if err := cur.Err(); err != nil {
		sum.Error, sum.Kind = err.Error(), errKind(err)
		s.streamFailure(r, err)
	} else {
		s.served.Add(1)
	}
	cur.Close() // settle so the summary below is complete
	if res, ok := cur.Summary(); ok {
		sum.Strategy = res.Strategy.String()
		sum.Shared = res.Shared
		sum.CostVNs = int64(res.CostV)
		sum.VirtualLatencyNs = int64(res.VirtualLatency)
	}
	nw.write(sum)
	nw.flush()
}

// streamFailure counts a mid-stream failure (the status line is already on
// the wire, so the failure is reported in-band by the summary record).
func (s *Server) streamFailure(r *http.Request, err error) {
	switch {
	case r.Context().Err() != nil:
		s.gone.Add(1)
	case errors.Is(err, pathdb.ErrTimeout):
		s.timeouts.Add(1)
	case errors.Is(err, pathdb.ErrIO) || errors.Is(err, pathdb.ErrCorrupt):
		s.ioErrors.Add(1)
	}
}

// streamQuery is the router's NDJSON delivery mode: the cluster's k-way
// merge feeds the response directly, so merged nodes go to the client in
// global document order as the shards produce them and the router never
// holds more than the heap of stream heads plus one flush chunk. Document
// order is inherent to the merge, so the "sorted" request field is implied.
func (rt *Router) streamQuery(ctx context.Context, w http.ResponseWriter, r *http.Request, req QueryRequest, opts pathdb.QueryOptions) {
	opts.Limit = req.Limit
	sc, err := rt.cluster.Stream(ctx, req.Path, opts)
	if err != nil {
		rt.queryError(w, r, err)
		return
	}
	defer sc.Close()

	nw := newNDJSONWriter(w)
	for sc.Next() {
		sn := sc.Node()
		if !nw.write(NodeJSON{ID: sn.Node.ID(), Name: sn.Node.Name(), Ord: sn.Node.OrdPath(), Shard: sn.Shard}) {
			rt.gone.Add(1)
			return
		}
	}

	out := StreamSummaryJSON{
		Summary:   true,
		Path:      req.Path,
		Count:     sc.Count(),
		Truncated: opts.Limit > 0 && sc.Count() >= opts.Limit,
	}
	if err := sc.Err(); err != nil {
		out.Error, out.Kind = err.Error(), errKind(err)
		rt.streamFailure(r, err)
	} else {
		rt.served.Add(1)
	}
	sc.Close()
	if sum, ok := sc.Summary(); ok {
		out.Partial = sum.Partial
		for _, f := range sum.Degraded {
			out.Degraded = append(out.Degraded, DegradedJSON{
				Shard: f.Shard,
				Kind:  f.Kind.String(),
				Error: f.Err.Error(),
			})
		}
		for _, ps := range sum.PerShard {
			if !ps.Failed && !ps.Cached {
				out.CostVNs += int64(ps.CostV)
			}
		}
		if out.Partial {
			rt.partials.Add(1)
		}
	}
	nw.write(out)
	nw.flush()
}

func (rt *Router) streamFailure(r *http.Request, err error) {
	switch {
	case r.Context().Err() != nil:
		rt.gone.Add(1)
	case errors.Is(err, pathdb.ErrTimeout):
		rt.timeouts.Add(1)
	case errors.Is(err, pathdb.ErrIO) || errors.Is(err, pathdb.ErrCorrupt):
		rt.ioErrors.Add(1)
	}
}
