package server

import (
	"fmt"
	"net/http"
	"strings"
)

// handleMetrics renders GET /metrics in the Prometheus text exposition
// format (version 0.0.4): engine admission/dispatch counters, the volume's
// full cost ledger under the stable names stats.Ledger.Named exports, and
// the server's own request counters. Everything is emitted from atomic
// snapshots; no locks are held while writing.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var b strings.Builder

	m := s.eng.Metrics()
	counter(&b, "pathdb_engine_submitted_total", "Queries admitted by the engine.", float64(m.Submitted))
	counter(&b, "pathdb_engine_rejected_total", "Submissions shed because the admission queue was full.", float64(m.Rejected))
	counter(&b, "pathdb_engine_completed_total", "Queries finished without error.", float64(m.Completed))
	counter(&b, "pathdb_engine_cancelled_total", "Queries failed with a context error (deadline or disconnect).", float64(m.Cancelled))
	counter(&b, "pathdb_engine_gangs_total", "Dispatcher batches executed.", float64(m.Gangs))
	counter(&b, "pathdb_engine_batched_total", "Queries that ran on a gang-shared I/O scheduler.", float64(m.Batched))
	counter(&b, "pathdb_engine_faulted_total", "Queries failed by a storage page fault (I/O or corruption).", float64(m.Faulted))
	counter(&b, "pathdb_engine_updates_total", "Write transactions admitted by the engine.", float64(m.Updates))
	counter(&b, "pathdb_engine_overhead_virtual_seconds_total", "Virtual time spent on dispatch bookkeeping.", m.OverheadV.Seconds())

	// Transaction subsystem: commit/abort outcomes and the group-commit
	// shape (flushes per commit < 1 means concurrent writers batched onto
	// shared WAL flushes). All zeros until the first write creates the
	// manager.
	tm := s.eng.TxnMetrics()
	counter(&b, "pathdb_txn_commits_total", "Transactions committed.", float64(tm.Commits))
	counter(&b, "pathdb_txn_aborts_total", "Transactions rolled back.", float64(tm.Aborts))
	counter(&b, "pathdb_txn_groups_total", "Commit groups flushed to the WAL.", float64(tm.Groups))
	counter(&b, "pathdb_txn_wal_flushes_total", "WAL page writes across all commit groups.", float64(tm.Flushes))
	gauge(&b, "pathdb_txn_max_group_size", "Largest commit group observed.", float64(tm.MaxGroup))
	gauge(&b, "pathdb_txn_flushes_per_commit", "WAL flushes divided by commits (group commit drives it below 1).", tm.FlushesPerCommit)
	gauge(&b, "pathdb_txn_epoch", "Current published volume version.", float64(tm.Epoch))
	gauge(&b, "pathdb_txn_pinned_snapshots", "Snapshots currently pinned by readers.", float64(tm.Pinned))
	gauge(&b, "pathdb_txn_free_pages", "Reclaimed pages awaiting reuse.", float64(tm.FreePage))

	// The whole cost ledger, one series per field. Virtual clocks (the
	// "_ns" names) become seconds; event counts stay raw.
	led := s.eng.CostLedger()
	for _, nv := range led.Named() {
		if base, ok := strings.CutSuffix(nv.Name, "_ns"); ok {
			counter(&b, "pathdb_ledger_"+base+"_virtual_seconds_total",
				"Virtual clock \""+nv.Name+"\" of the volume cost ledger.",
				float64(nv.Value)/1e9)
			continue
		}
		counter(&b, "pathdb_ledger_"+nv.Name+"_total",
			"Counter \""+nv.Name+"\" of the volume cost ledger.",
			float64(nv.Value))
	}

	gauge(&b, "pathdb_server_inflight", "Query requests currently executing.", float64(s.inflightN.Load()))
	gauge(&b, "pathdb_server_draining", "1 once Shutdown has begun.", boolGauge(s.Draining()))
	counter(&b, "pathdb_server_requests_total", "Query requests accepted into a handler.", float64(s.requests.Load()))
	counter(&b, "pathdb_server_served_total", "Query requests answered 200.", float64(s.served.Load()))
	counter(&b, "pathdb_server_shed_total", "Query requests answered 503 (overload or drain).", float64(s.shed.Load()))
	counter(&b, "pathdb_server_timeouts_total", "Query requests answered 504 (deadline expired).", float64(s.timeouts.Load()))
	counter(&b, "pathdb_server_bad_requests_total", "Query requests answered 400.", float64(s.badReqs.Load()))
	counter(&b, "pathdb_server_client_gone_total", "Queries whose client disconnected mid-flight.", float64(s.gone.Load()))
	counter(&b, "pathdb_server_io_errors_total", "Query requests answered 500 for a storage fault (io or corrupt kind).", float64(s.ioErrors.Load()))
	counter(&b, "pathdb_server_updates_total", "Update requests accepted into a handler.", float64(s.updates.Load()))
	counter(&b, "pathdb_server_updated_total", "Update requests answered 200.", float64(s.updated.Load()))
	counter(&b, "pathdb_server_update_errors_total", "Update requests answered 4xx/5xx.", float64(s.updateErrs.Load()))
	gauge(&b, "pathdb_volume_pages", "Data pages of the loaded volume.", float64(s.db.Pages()))

	_, _ = w.Write([]byte(b.String()))
}

func boolGauge(v bool) float64 {
	if v {
		return 1
	}
	return 0
}

func counter(b *strings.Builder, name, help string, v float64) { series(b, name, help, "counter", v) }
func gauge(b *strings.Builder, name, help string, v float64)   { series(b, name, help, "gauge", v) }

func series(b *strings.Builder, name, help, typ string, v float64) {
	fmt.Fprintf(b, "# HELP %s %s\n", name, help)
	fmt.Fprintf(b, "# TYPE %s %s\n", name, typ)
	fmt.Fprintf(b, "%s %g\n", name, v)
}

// labeledSample is one sample of a labeled series; labels is the rendered
// label set without braces, e.g. `shard="2"`.
type labeledSample struct {
	labels string
	v      float64
}

func labeledCounter(b *strings.Builder, name, help string, samples []labeledSample) {
	labeledSeries(b, name, help, "counter", samples)
}

func labeledGauge(b *strings.Builder, name, help string, samples []labeledSample) {
	labeledSeries(b, name, help, "gauge", samples)
}

// labeledSeries emits one metric with HELP/TYPE stated once and one sample
// line per label set — the exposition-format shape for per-shard and
// per-tenant breakdowns.
func labeledSeries(b *strings.Builder, name, help, typ string, samples []labeledSample) {
	fmt.Fprintf(b, "# HELP %s %s\n", name, help)
	fmt.Fprintf(b, "# TYPE %s %s\n", name, typ)
	for _, s := range samples {
		fmt.Fprintf(b, "%s{%s} %g\n", name, s.labels, s.v)
	}
}

// labelEscaper quotes a label value per the exposition format.
var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func labelValue(key, value string) string {
	return key + `="` + labelEscaper.Replace(value) + `"`
}
