package core

import (
	"sort"

	"pathdb/internal/ordpath"
	"pathdb/internal/stats"
	"pathdb/internal/storage"
)

// Distinct eliminates duplicate result nodes by their NodeID. Simple plans
// need it to honour XPath node-set semantics (Sec. 5.1); XSchedule/XScan
// plans get duplicate elimination from XAssembly's R for free
// (Sec. 5.3.3.3).
type Distinct struct {
	es    *EvalState
	input Operator
	seen  map[storage.NodeID]bool
}

// NewDistinct wraps input with duplicate elimination.
func NewDistinct(es *EvalState, input Operator) *Distinct {
	return &Distinct{es: es, input: input}
}

// Open opens the producer and resets the seen set.
func (d *Distinct) Open() {
	d.input.Open()
	d.seen = make(map[storage.NodeID]bool)
}

// Close releases the seen set.
func (d *Distinct) Close() {
	d.input.Close()
	d.seen = nil
}

// Next returns the next previously unseen instance.
func (d *Distinct) Next() (Instance, bool) {
	for {
		in, ok := d.input.Next()
		if !ok {
			return Instance{}, false
		}
		d.es.chargeSetOp(1)
		stats.Inc(&d.es.ledger().SetLookups)
		if d.seen[in.NR] {
			continue
		}
		d.es.chargeSetOp(1)
		stats.Inc(&d.es.ledger().SetInserts)
		d.seen[in.NR] = true
		return in, true
	}
}

// SortByDocumentOrder materializes its input and emits it in document
// order using the ORDPATH-style keys captured on each instance — the
// final sort of Sec. 5.5, always required after cost-based reordering.
// It is the only pipeline breaker in a plan.
type SortByDocumentOrder struct {
	es    *EvalState
	input Operator
	buf   []Instance
	pos   int
	done  bool
}

// NewSortByDocumentOrder wraps input with the final sort.
func NewSortByDocumentOrder(es *EvalState, input Operator) *SortByDocumentOrder {
	return &SortByDocumentOrder{es: es, input: input}
}

// Open opens the producer; materialization is lazy on first Next.
func (s *SortByDocumentOrder) Open() {
	s.input.Open()
	s.buf = s.buf[:0]
	s.pos = 0
	s.done = false
}

// Close drops the buffer.
func (s *SortByDocumentOrder) Close() {
	s.input.Close()
	s.buf = nil
}

// Next drains the producer on first call, sorts, then emits in order.
func (s *SortByDocumentOrder) Next() (Instance, bool) {
	if !s.done {
		for {
			in, ok := s.input.Next()
			if !ok {
				break
			}
			s.buf = append(s.buf, in.dropCur())
		}
		// n log n comparisons, each charged as a set operation.
		n := len(s.buf)
		if n > 1 {
			cmp := 0
			sort.SliceStable(s.buf, func(i, j int) bool {
				cmp++
				return ordpath.Compare(s.buf[i].Ord, s.buf[j].Ord) < 0
			})
			s.es.chargeSetOp(cmp)
		}
		s.done = true
	}
	if s.pos >= len(s.buf) {
		return Instance{}, false
	}
	out := s.buf[s.pos]
	s.pos++
	return out, true
}
